"""Index lifecycle tests: build -> persist -> open -> serve.

Pins the build-once / query-many contract:

- ``MegisIndex.open()`` + ``AnalysisSession.analyze()`` reproduce a fresh
  pipeline bit for bit, for both backends, both abundance methods, and the
  sharded path;
- opening attaches the persisted CSR columns — zero database or KSS
  reconstruction happens between (or during) consecutive ``analyze()``
  calls, asserted through the cache-build counters;
- legacy (pre-index) bare database payloads still load through
  ``deserialize_database``, and the index reader rejects them (and any
  corrupt or truncated section) loudly;
- Step-3 unified-index construction is cached across a sample stream when
  candidate sets overlap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.databases.serialization import (
    SerializationError,
    deserialize_database,
    serialize_database,
)
from repro.databases.sorted_db import SortedKmerDatabase
from repro.megis.index import IndexBuilder, MegisIndex
from repro.megis.pipeline import MegisPipeline
from repro.megis.session import AnalysisSession, MegisConfig
from repro.tools.mapping import SpeciesIndex

BACKENDS = ("python", "numpy")


@pytest.fixture(scope="module")
def index(sorted_db, sketch_db, references):
    return MegisIndex(sorted_db, sketch_db, references)


@pytest.fixture(scope="module")
def payload(index):
    return index.to_bytes(n_shards=3)


@pytest.fixture(scope="module")
def opened(payload):
    return MegisIndex.from_bytes(payload)


class TestRoundTrip:
    def test_database_columns_attached(self, opened, sorted_db):
        assert opened.database.kmers == sorted_db.kmers
        assert opened.database.column_builds == 0
        assert opened.database.owner_column_builds == 0
        taxids, offsets = opened.database.owner_columns()
        want_taxids, want_offsets = sorted_db.owner_columns()
        assert taxids.tolist() == want_taxids.tolist()
        assert offsets.tolist() == want_offsets.tolist()

    def test_owners_answered_from_columns(self, opened, sorted_db):
        for kmer in sorted_db.kmers[:40]:
            assert opened.database.owners_of(kmer) == sorted_db.owners_of(kmer)

    def test_kss_store_attached(self, opened):
        assert opened.kss.column_builds == 0
        assert opened.kss.row_materializations == 0

    def test_kss_columns_equal_built(self, opened, kss_tables):
        got, want = opened.kss.columns(), kss_tables.columns()
        assert got.kmers.tolist() == want.kmers.tolist()
        assert got.taxids.tolist() == want.taxids.tolist()
        assert got.offsets.tolist() == want.offsets.tolist()
        for k in kss_tables.smaller_ks:
            assert got.levels[k].prefixes.tolist() == want.levels[k].prefixes.tolist()
            assert got.levels[k].taxids.tolist() == want.levels[k].taxids.tolist()
            assert got.levels[k].offsets.tolist() == want.levels[k].offsets.tolist()

    def test_kss_rows_lazy_and_equal(self, payload, kss_tables):
        fresh = MegisIndex.from_bytes(payload)
        assert fresh.kss.row_materializations == 0
        assert fresh.kss.entries == kss_tables.entries
        assert fresh.kss.sub_tables == kss_tables.sub_tables
        assert fresh.kss.row_materializations > 0

    def test_sketch_tables_lazy_and_equal(self, payload, sketch_db):
        fresh = MegisIndex.from_bytes(payload)
        assert fresh.sketch.sketch_sizes == sketch_db.sketch_sizes
        assert fresh.sketch._tables is None  # not materialized by loading
        assert fresh.sketch.tables == sketch_db.tables

    def test_saved_shards_rebased_on_parent(self, opened):
        column = opened.database.column()
        for shard in opened.shards(3):
            shard_column = shard.database.column()
            assert len(shard_column) == 0 or shard_column.base is column

    def test_references_roundtrip(self, opened, references):
        assert opened.references.species_taxids == references.species_taxids
        for taxid in references.species_taxids:
            assert opened.references.sequence(taxid) == references.sequence(taxid)

    def test_metalign_only_session_never_builds_kss(self, sorted_db, sketch_db,
                                                    references, sample):
        # The lazy-KSS design: a Metalign-only session streams no KSS, so
        # neither the session nor the shim may force its construction.
        lazy = MegisIndex(sorted_db, sketch_db, references)
        session = AnalysisSession(lazy)
        assert session.analyze_metalign(sample.reads).candidates
        assert lazy._kss is None

    def test_without_references(self, index, sample):
        slim = MegisIndex.from_bytes(index.to_bytes(include_references=False))
        assert slim.references is None
        session = AnalysisSession(slim, MegisConfig(abundance_method="statistical"))
        assert session.analyze(sample.reads).candidates
        with pytest.raises(ValueError, match="no reference sequences"):
            AnalysisSession(slim).analyze(sample.reads)

    def test_save_open_file(self, tmp_path, index, sample):
        path = index.save(tmp_path / "world.megis", n_shards=2)
        served = AnalysisSession(MegisIndex.open(path)).analyze(sample.reads)
        fresh = AnalysisSession(index).analyze(sample.reads)
        assert served.candidates == fresh.candidates
        assert served.profile.fractions == fresh.profile.fractions


class TestServedEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("method", ["mapping", "statistical"])
    @pytest.mark.parametrize("n_ssds", [1, 3])
    def test_session_equals_fresh_pipeline(self, opened, sorted_db, sketch_db,
                                           sample, backend, method, n_ssds):
        config = MegisConfig(backend=backend, abundance_method=method,
                             n_ssds=n_ssds)
        fresh = MegisPipeline(
            sorted_db, sketch_db, sample.references, config=config
        ).analyze(sample.reads)
        served = AnalysisSession(opened, config).analyze(sample.reads)
        assert served.intersecting_kmers == fresh.intersecting_kmers
        assert served.sketch_hits == fresh.sketch_hits
        assert served.candidates == fresh.candidates
        assert served.profile.fractions == fresh.profile.fractions

    def test_batch_equals_individual(self, opened, sample):
        session = AnalysisSession(opened, MegisConfig(backend="numpy"))
        halves = [sample.reads[:200], sample.reads[200:]]
        batched = session.analyze_batch(halves)
        individual = [session.analyze(reads) for reads in halves]
        for got, want in zip(batched, individual):
            assert got.candidates == want.candidates
            assert got.profile.fractions == want.profile.fractions

    def test_metalign_session_over_opened_index(self, opened, sorted_db,
                                                sketch_db, sample):
        session = AnalysisSession(opened)
        metalign = session.analyze_metalign(sample.reads)
        megis = session.analyze(sample.reads)
        assert metalign.candidates == megis.candidates
        assert metalign.profile.fractions == megis.profile.fractions


class TestZeroReconstruction:
    def test_no_rebuild_between_analyze_calls(self, payload, sample):
        opened = MegisIndex.from_bytes(payload)
        session = AnalysisSession(
            opened, MegisConfig(backend="numpy", abundance_method="statistical",
                                n_ssds=3),
        )
        first = session.analyze(sample.reads)
        second = session.analyze(sample.reads)
        assert first.candidates == second.candidates
        assert opened.database.column_builds == 0
        assert opened.database.owner_column_builds == 0
        assert opened.kss.column_builds == 0
        assert opened.kss.row_materializations == 0
        for shard in opened.shards(3):
            assert shard.database.column_builds == 0
            assert shard.kss.column_builds == 0
            assert shard.kss.row_materializations == 0

    def test_species_index_cache_across_overlapping_candidates(
        self, opened, sample, monkeypatch
    ):
        built = []
        original = SpeciesIndex.build.__func__

        def counting(cls, taxid, sequence, k):
            built.append(taxid)
            return original(cls, taxid, sequence, k)

        monkeypatch.setattr(
            SpeciesIndex, "build", classmethod(counting)
        )
        session = AnalysisSession(opened, MegisConfig(backend="numpy"))
        session.analyze_batch([sample.reads[:200], sample.reads[200:]])
        session.analyze(sample.reads)
        assert built, "mapping Step 3 never ran"
        assert len(set(built)) == len(built), (
            "a species index was rebuilt despite overlapping candidate sets"
        )

    def test_identical_candidate_sets_share_the_merge(self, opened, sample):
        session = AnalysisSession(opened, MegisConfig(backend="numpy"))
        first = session.analyze(sample.reads)
        second = session.analyze(sample.reads)
        assert first.merge_stats is second.merge_stats
        assert len(session._unified_cache) == 1

    def test_unified_cache_is_lru_bounded(self, opened):
        from itertools import combinations, islice

        session = AnalysisSession(opened)
        taxids = opened.references.species_taxids
        n_sets = session.UNIFIED_CACHE_LIMIT + 5
        distinct = list(islice(combinations(taxids, 2), n_sets))
        assert len(distinct) == n_sets, "fixture too small for the sweep"
        for pair in distinct:
            session.unified_index(pair)
        assert len(session._unified_cache) == session.UNIFIED_CACHE_LIMIT
        # The most recent entries survived the eviction.
        assert frozenset(distinct[-1]) in session._unified_cache
        assert frozenset(distinct[0]) not in session._unified_cache

    def test_backend_instance_accepted(self, opened, sample):
        from repro.backends import get_backend

        session = AnalysisSession(opened, backend=get_backend("numpy"))
        assert session.config.backend == "numpy"
        assert session.analyze(sample.reads, with_abundance=False).candidates


class TestLegacyAndCorruption:
    def test_legacy_database_payload_still_loads(self, sorted_db):
        for layout in ("csr", "interleaved"):
            loaded = deserialize_database(
                serialize_database(sorted_db, layout=layout)
            )
            assert loaded.kmers == sorted_db.kmers

    def test_bare_database_payload_rejected_with_hint(self, sorted_db):
        with pytest.raises(SerializationError, match="bare k-mer database"):
            MegisIndex.from_bytes(serialize_database(sorted_db))

    def test_bad_magic(self, payload):
        corrupt = bytearray(payload)
        corrupt[0] ^= 0xFF
        with pytest.raises(SerializationError, match="magic"):
            MegisIndex.from_bytes(bytes(corrupt))

    def test_unsupported_version(self, payload):
        corrupt = bytearray(payload)
        corrupt[8] = 99
        with pytest.raises(SerializationError, match="version"):
            MegisIndex.from_bytes(bytes(corrupt))

    def test_truncated_body(self, payload):
        with pytest.raises(SerializationError):
            MegisIndex.from_bytes(payload[:-7])

    def test_trailing_garbage(self, payload):
        with pytest.raises(SerializationError, match="trailing"):
            MegisIndex.from_bytes(payload + b"xx")

    def test_corrupt_toc(self, payload):
        corrupt = bytearray(payload)
        corrupt[20] = 0x7B  # stomp inside the JSON table of contents
        with pytest.raises(SerializationError):
            MegisIndex.from_bytes(bytes(corrupt))

    def test_missing_section_rejected(self, index):
        from repro.databases.serialization import pack_sections, unpack_sections

        sections = {
            name: bytes(view)
            for name, view in unpack_sections(index.to_bytes()).items()
            if name != "kss/kmers"
        }
        with pytest.raises(SerializationError, match="kss/kmers"):
            MegisIndex.from_bytes(pack_sections(sections))

    def test_out_of_order_kmer_column_rejected(self):
        # A corrupt CSR payload with unsorted k-mers must fail at load,
        # not misresolve bisect-based queries later.
        db = SortedKmerDatabase(12, [5, 9, 40], [frozenset({1})] * 3)
        payload = bytearray(serialize_database(db))
        # Swap the first two 3-byte k-mer records (header is 16 bytes).
        payload[16:19], payload[19:22] = payload[19:22], payload[16:19]
        with pytest.raises(ValueError, match="strictly increasing"):
            deserialize_database(bytes(payload))

    def test_misordered_shard_sections_rejected(self, index):
        from repro.databases.serialization import pack_sections, unpack_sections

        sections = {
            name: bytes(view)
            for name, view in unpack_sections(index.to_bytes(n_shards=3)).items()
        }
        sections["db/shard/0"], sections["db/shard/1"] = (
            sections["db/shard/1"], sections["db/shard/0"],
        )
        with pytest.raises(SerializationError, match="ascending"):
            MegisIndex.from_bytes(pack_sections(sections))

    def test_inconsistent_csr_rejected(self, index):
        from repro.databases.serialization import (
            pack_i64,
            pack_sections,
            unpack_sections,
        )

        sections = {
            name: bytes(view)
            for name, view in unpack_sections(index.to_bytes()).items()
        }
        sections["kss/kmax_offsets"] = pack_i64([0, 1])  # wrong row count
        with pytest.raises(SerializationError, match="kss/kmax_offsets"):
            MegisIndex.from_bytes(pack_sections(sections))


class TestShardSections:
    def test_load_single_shard_independently(self, payload, opened):
        for i, want in enumerate(opened.shards(3)):
            shard = MegisIndex.load_shard(payload, i)
            assert (shard.lo, shard.hi) == (want.lo, want.hi)
            assert shard.database.kmers == want.database.kmers
            assert shard.kss is not None

    def test_shard_index_out_of_range(self, payload):
        with pytest.raises(SerializationError, match="out of range"):
            MegisIndex.load_shard(payload, 5)

    def test_shard_kss_range_bounded(self, opened, kss_tables):
        # Range-sharded KSS: every shard's KSS only carries its own range
        # (prefix-aligned), and together they stay smaller than n copies.
        shards = opened.shards(3)
        total = sum(len(s.kss) for s in shards)
        assert total == len(kss_tables)  # k_max rows partition exactly
        for shard in shards:
            store = shard.kss.store()
            if len(store.kmers):
                assert int(store.kmers[0]) >= shard.lo
                assert int(store.kmers[-1]) < shard.hi


class TestKssRangeSlicing:
    @pytest.mark.parametrize("backend", [None, "python", "numpy"])
    def test_sliced_retrieval_matches_full(self, kss_tables, sketch_db, backend):
        queries = sorted(sketch_db.tables[sketch_db.k_max])
        cut = queries[len(queries) // 2]
        full = kss_tables.retrieve(queries)
        space = 1 << (2 * kss_tables.k_max)
        for lo, hi in ((0, cut), (cut, space)):
            part = kss_tables.slice_range(lo, hi)
            expected = {q: full[q] for q in queries if lo <= q < hi}
            got = part.retrieve([q for q in queries if lo <= q < hi],
                                backend=backend)
            assert got == expected

    def test_boundary_prefix_stored_absorbs_foreign_coverage(self, kss_tables):
        # Cut inside a prefix group: the boundary row's stored set must
        # absorb owners covered only by the other shard's k-mers, so
        # stored UNION covered-within-shard still equals the full set.
        store = kss_tables.store()
        k = kss_tables.smaller_ks[0]
        shift = 2 * (kss_tables.k_max - k)
        prefixes = np.asarray(store.kmers, dtype=np.uint64) >> np.uint64(shift)
        split_at = None
        for i in range(1, len(prefixes)):
            if prefixes[i] == prefixes[i - 1]:
                split_at = int(store.kmers[i])
                break
        assert split_at is not None, "fixture has no multi-k-mer prefix group"
        left = kss_tables.slice_range(0, split_at)
        right = kss_tables.slice_range(split_at, 1 << (2 * kss_tables.k_max))
        boundary = int(prefixes[i])
        covered_left = left._covered_by_prefix(k).get(boundary, frozenset())
        covered_right = right._covered_by_prefix(k).get(boundary, frozenset())
        full = kss_tables._covered_by_prefix(k)[boundary] | {
            t for row in kss_tables.sub_tables[k] if row.prefix == boundary
            for t in row.stored
        }
        for part, covered in ((left, covered_left), (right, covered_right)):
            row = next(
                r for r in part.sub_tables[k] if r.prefix == boundary
            )
            assert row.stored | covered == full
            assert not (row.stored & covered)

    def test_inverted_range_rejected(self, kss_tables):
        with pytest.raises(ValueError):
            kss_tables.slice_range(10, 5)


class TestIndexBuilder:
    def test_build_matches_manual_construction(self, references, sample):
        built = IndexBuilder(k=20, smaller_ks=(12, 8), sketch_fraction=0.3).build(
            references
        )
        session = AnalysisSession(built)
        result = session.analyze(sample.reads)
        assert result.candidates

    def test_default_smaller_ks_follow_k(self):
        assert IndexBuilder(k=20).resolved_smaller_ks() == (12, 8)
        assert IndexBuilder(k=16).resolved_smaller_ks() == (8, 4)

    def test_mismatched_k_rejected(self, sorted_db, references):
        from repro.databases.sketch import SketchDatabase

        wrong = SketchDatabase.build(references, k_max=16, smaller_ks=(8,))
        with pytest.raises(ValueError):
            MegisIndex(sorted_db, wrong, references)
