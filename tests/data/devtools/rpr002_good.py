"""Known-good RPR002 fixture: mutations locked or contract-documented."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def bump(self):
        with self._lock:
            self._bump_locked()

    def _bump_locked(self):
        """Caller holds the lock."""
        self.value += 1

    def reset(self):
        with self._lock:
            self.value = 0
