"""Known-bad RPR001 fixture: blocking calls inside async def bodies.

Lines carrying a trailing ``# violation`` marker are the exact findings
the checker must report.
"""

import subprocess
import time


async def handler(sock, fut, lock, pump_thread):
    time.sleep(0.1)  # violation
    dump = open("dump.bin")  # violation
    lock.acquire()  # violation
    fut.result()  # violation
    subprocess.run(["true"])  # violation
    pump_thread.join()  # violation
    return sock, dump
