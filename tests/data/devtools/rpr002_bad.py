"""Known-bad RPR002 fixture: a guarded attribute mutated without the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def bump(self):
        with self._lock:
            self.value += 1

    def reset(self):
        self.value = 0  # violation
