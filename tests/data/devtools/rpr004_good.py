"""Known-good RPR004 fixture: constructor-built frames, registry ops."""

from repro.megis import wire


def emit(queue, result, metrics):
    queue.append(wire.encode(wire.result_record("x", 4, result, metrics)))


def dispatch(record):
    if record.get("op") == "ping":
        return wire.pong_record(record.get("id"), 0, (0, 1), 0)
    return None
