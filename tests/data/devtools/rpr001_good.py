"""Known-good RPR001 fixture: blocking work routed off the event loop."""

import asyncio
import time


def warm_cache(lock):
    # Sync code may block freely; the rule only guards the event loop.
    time.sleep(0.0)
    with lock:
        pass


async def handler(loop, pool, pump_thread):
    await asyncio.sleep(0)
    await loop.run_in_executor(None, pump_thread.join)
    await asyncio.to_thread(time.sleep, 0)
    banner = ", ".join(["a", "b"])

    def payload():
        # Executor payloads defined inside the coroutine run on worker
        # threads, where blocking is the whole point.
        time.sleep(0.0)

    await loop.run_in_executor(pool, payload)
    return banner
