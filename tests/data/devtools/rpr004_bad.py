"""Known-bad RPR004 fixture: ad-hoc frames and unknown ops."""

import json


def emit(sock):
    frame = {"schema": 1, "id": "x", "reads": []}  # violation
    sock.sendall(json.dumps(frame))


def emit_raw(sock, encode):
    sock.sendall(encode({"id": "y"}))  # violation


def dispatch(record):
    op = record.get("op")
    if op == "step3":  # violation
        return None
    return op
