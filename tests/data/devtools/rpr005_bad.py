"""Known-bad RPR005 fixture: bare except, library print, mutable default."""


def risky(values=[]):  # violation
    try:
        values.append(1)
    except:  # violation
        print("boom")  # violation
    return values
