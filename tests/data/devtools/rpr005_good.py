"""Known-good RPR005 fixture: typed excepts, stderr logging, None defaults."""

import sys


def careful(values=None):
    if values is None:
        values = []
    try:
        values.append(1)
    except ValueError:
        sys.stderr.write("boom\n")
    return values
