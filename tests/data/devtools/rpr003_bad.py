"""Known-bad RPR003 fixture: ambient nondeterminism in engine code."""

import random
import time


def jitter():
    return random.random()  # violation


def stamp():
    return time.time()  # violation


def walk_levels():
    total = 0
    for taxid in {3, 1, 2}:  # violation
        total += taxid
    return total
