"""Known-good RPR003 fixture: injected seeds, monotonic clocks, sorted sets."""

import random
import time


def make_rng(seed):
    return random.Random(seed)


def jitter(rng):
    # Drawing from an injected, seeded generator is the sanctioned path.
    return rng.random()


def elapsed(clock=time.monotonic):
    start = clock()
    return clock() - start


def walk_levels(level_set):
    return [taxid for taxid in sorted(level_set)]
