"""Tests for the baseline tools: Kraken2, Bracken, Metalign, mapping."""

import pytest

from repro.sequences.reads import ReadSimulator
from repro.taxonomy.metrics import f1_score
from repro.taxonomy.tree import ROOT_TAXID, Rank
from repro.tools.bracken import BrackenEstimator
from repro.tools.kraken2 import Kraken2Classifier
from repro.tools.mapping import ReadMapper, SpeciesIndex, UnifiedIndex
from repro.tools.metalign import MetalignPipeline, containment_score


@pytest.fixture(scope="module")
def clean_reads(sample):
    """Error-free reads with known provenance (easier ground truth)."""
    simulator = ReadSimulator(read_length=100, error_rate=0.0, seed=33)
    return simulator.simulate(sample.references, sample.truth.fractions, 200)


class TestKraken2Classifier:
    def test_clean_read_classified_within_true_clade(self, kraken_db, sample, clean_reads):
        classifier = Kraken2Classifier(kraken_db)
        taxonomy = sample.taxonomy
        indexed = set(kraken_db.indexed_taxids)
        checked = 0
        for read in clean_reads[:60]:
            if read.true_taxid not in indexed:
                continue
            assigned = classifier.classify_read(read.sequence)
            if assigned is None:
                continue
            # The assignment must lie on the true species' root path or in
            # its genus subtree (k-mers shared within the genus).
            genus = taxonomy.parent(read.true_taxid)
            assert taxonomy.lca(assigned, read.true_taxid) in (
                read.true_taxid, genus, ROOT_TAXID,
            )
            checked += 1
        assert checked > 10

    def test_random_read_unclassified(self, kraken_db):
        classifier = Kraken2Classifier(kraken_db)
        # A read of repeated AC never occurs in random genomes of this size.
        assert classifier.classify_read("AC" * 50) is None

    def test_too_short_read(self, kraken_db):
        classifier = Kraken2Classifier(kraken_db)
        assert classifier.classify_read("ACGT") is None

    def test_analyze_partitions_reads(self, kraken_db, clean_reads):
        classifier = Kraken2Classifier(kraken_db)
        result = classifier.analyze(clean_reads)
        assert len(result.assignments) + result.unclassified == len(clean_reads)

    def test_present_species_threshold(self, kraken_db, clean_reads):
        classifier = Kraken2Classifier(kraken_db)
        result = classifier.analyze(clean_reads)
        loose = classifier.present_species(result, min_reads=1)
        strict = classifier.present_species(result, min_reads=10)
        assert strict <= loose

    def test_min_hit_fraction(self, kraken_db, clean_reads):
        strict = Kraken2Classifier(kraken_db, min_hit_fraction=0.99)
        loose = Kraken2Classifier(kraken_db, min_hit_fraction=0.0)
        read = clean_reads[0].sequence
        if loose.classify_read(read) is not None:
            # Strict threshold can only reject, never invent.
            assert strict.classify_read(read) in (None, loose.classify_read(read))

    def test_invalid_min_hit_fraction(self, kraken_db):
        with pytest.raises(ValueError):
            Kraken2Classifier(kraken_db, min_hit_fraction=2.0)


class TestBracken:
    def test_profile_is_species_level(self, kraken_db, sample, clean_reads):
        classifier = Kraken2Classifier(kraken_db)
        result = classifier.analyze(clean_reads)
        profile = BrackenEstimator(kraken_db).estimate(result)
        for taxid in profile.fractions:
            assert sample.taxonomy.rank(taxid) == Rank.SPECIES

    def test_redistribution_conserves_mass(self, kraken_db, clean_reads):
        classifier = Kraken2Classifier(kraken_db)
        result = classifier.analyze(clean_reads)
        profile = BrackenEstimator(kraken_db).estimate(result)
        assert profile.total() == pytest.approx(1.0)

    def test_internal_assignments_pushed_down(self, kraken_db, sample):
        estimator = BrackenEstimator(kraken_db)
        taxonomy = sample.taxonomy
        genus = taxonomy.parent(kraken_db.indexed_taxids[0])
        from repro.tools.kraken2 import Kraken2Result

        result = Kraken2Result(assignments={0: genus})
        profile = estimator.estimate(result)
        assert profile.total() == pytest.approx(1.0)
        assert all(taxonomy.rank(t) == Rank.SPECIES for t in profile.fractions)


class TestMapping:
    def test_species_index_locations(self):
        index = SpeciesIndex.build(7, "ACGTACGT", k=4)
        from repro.sequences.encoding import encode_kmer

        assert index.entries[encode_kmer("ACGT")] == (0, 4)
        assert index.genome_length == 8

    def test_unified_merge_offsets(self):
        a = SpeciesIndex.build(1, "AAAA", k=2)
        b = SpeciesIndex.build(2, "AATT", k=2)
        merged = UnifiedIndex.merge([a, b])
        from repro.sequences.encoding import encode_kmer

        aa = encode_kmer("AA")
        assert merged.entries[aa] == (0, 1, 2, 4)  # 3 in genome a, 1 in b at offset 4
        assert merged.boundaries == {1: (0, 4), 2: (4, 8)}

    def test_merge_mixed_k_raises(self):
        a = SpeciesIndex.build(1, "AAAA", k=2)
        b = SpeciesIndex.build(2, "AATT", k=3)
        with pytest.raises(ValueError):
            UnifiedIndex.merge([a, b])

    def test_empty_merge(self):
        merged = UnifiedIndex.merge([])
        assert len(merged) == 0

    def test_taxid_of_location(self):
        a = SpeciesIndex.build(1, "AAAA", k=2)
        b = SpeciesIndex.build(2, "TTTT", k=2)
        merged = UnifiedIndex.merge([a, b])
        assert merged.taxid_of_location(0) == 1
        assert merged.taxid_of_location(5) == 2
        assert merged.taxid_of_location(99) is None

    def test_clean_reads_map_to_source(self, sample, clean_reads):
        candidates = sample.present_species()
        mapper = ReadMapper.for_candidates(sample.references, candidates, k=15)
        correct = total = 0
        for read in clean_reads[:80]:
            mapped = mapper.map_read(read.sequence)
            if mapped is None:
                continue
            total += 1
            correct += mapped == read.true_taxid
        assert total > 30
        assert correct / total > 0.8

    def test_unmappable_read(self, sample):
        mapper = ReadMapper.for_candidates(
            sample.references, sample.present_species(), k=15
        )
        assert mapper.map_read("A" * 100) is None or isinstance(
            mapper.map_read("A" * 100), int
        )

    def test_abundance_profile_normalized(self, sample, clean_reads):
        mapper = ReadMapper.for_candidates(
            sample.references, sample.present_species(), k=15
        )
        profile = mapper.estimate_abundance(clean_reads)
        assert profile.total() == pytest.approx(1.0)

    def test_invalid_min_seed(self, sample):
        index = UnifiedIndex.merge([])
        with pytest.raises(ValueError):
            ReadMapper(index, min_seed_hits=0)


class TestMetalign:
    def test_pipeline_finds_truth(self, sorted_db, sketch_db, sample):
        pipeline = MetalignPipeline(sorted_db, sketch_db, sample.references)
        result = pipeline.analyze(sample.reads)
        truth = sample.present_species()
        assert f1_score(result.present(), truth) > 0.8

    def test_intersection_subset_of_db(self, sorted_db, sketch_db, sample):
        pipeline = MetalignPipeline(sorted_db, sketch_db, sample.references)
        query = pipeline.prepare_queries(sample.reads)
        result = pipeline.find_candidates(query.tolist())
        assert set(result.intersecting_kmers) <= set(sorted_db.kmers)

    def test_candidates_superset_of_final_present(self, sorted_db, sketch_db, sample):
        pipeline = MetalignPipeline(sorted_db, sketch_db, sample.references)
        result = pipeline.analyze(sample.reads)
        assert result.present() <= result.candidates

    def test_mismatched_k_raises(self, sorted_db, sample):
        from repro.databases.sketch import SketchDatabase

        other = SketchDatabase.build(sample.references, k_max=16, smaller_ks=(8,))
        with pytest.raises(ValueError):
            MetalignPipeline(sorted_db, other, sample.references)

    def test_containment_score_weights_levels(self, sketch_db):
        taxid = next(iter(sketch_db.sketch_sizes))
        kmax_only = containment_score(sketch_db, taxid, {sketch_db.k_max: 10})
        mixed = containment_score(sketch_db, taxid, {sketch_db.k_max: 10, 12: 4})
        assert mixed > kmax_only

    def test_empty_candidates_empty_profile(self, sorted_db, sketch_db, sample):
        pipeline = MetalignPipeline(sorted_db, sketch_db, sample.references)
        profile = pipeline.estimate_abundance(sample.reads, set())
        assert len(profile) == 0
