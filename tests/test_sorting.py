"""Tests for the external merge sorter (KMC's sort, §4.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.megis.sorting import ExternalSorter, merge_sorted_runs

values_strategy = st.lists(st.integers(min_value=0, max_value=10**9), max_size=300)


class TestExternalSorter:
    def test_in_memory_run_no_spill(self):
        sorter = ExternalSorter(memory_values=100)
        assert sorter.sort([3, 1, 2]) == [1, 2, 3]
        assert sorter.stats.chunks == 1
        assert sorter.stats.spilled_values == 0

    def test_spill_when_over_budget(self):
        sorter = ExternalSorter(memory_values=4)
        values = [9, 1, 8, 2, 7, 3, 6, 4, 5]
        assert sorter.sort(values) == sorted(values)
        assert sorter.stats.chunks == 3
        assert sorter.stats.spilled_values == len(values)

    def test_spill_fraction(self):
        sorter = ExternalSorter(memory_values=4)
        sorter.sort(list(range(8, 0, -1)))
        assert sorter.stats.spill_fraction(8) == 1.0

    def test_empty_input(self):
        assert ExternalSorter().sort([]) == []

    def test_sort_unique(self):
        sorter = ExternalSorter(memory_values=3)
        assert sorter.sort_unique([5, 1, 5, 1, 2, 2, 5]) == [1, 2, 5]

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            ExternalSorter(memory_values=0)

    @given(values_strategy, st.integers(min_value=1, max_value=32))
    @settings(max_examples=40)
    def test_matches_sorted_property(self, values, budget):
        assert ExternalSorter(memory_values=budget).sort(values) == sorted(values)

    @given(values_strategy, st.integers(min_value=1, max_value=32))
    @settings(max_examples=40)
    def test_unique_property(self, values, budget):
        assert ExternalSorter(memory_values=budget).sort_unique(values) == sorted(
            set(values)
        )


class TestMergeSortedRuns:
    def test_merges(self):
        assert list(merge_sorted_runs([[1, 4], [2, 3], []])) == [1, 2, 3, 4]

    def test_rejects_unsorted_run(self):
        with pytest.raises(ValueError):
            list(merge_sorted_runs([[2, 1]]))
