"""Memmap-backed index opening: np.memmap CSR columns, zero materialization.

``MegisIndex.open(mmap=True)`` must attach the persisted int64 CSR
sections — the KSS owner/offset columns per level and each shard's
database owner CSR — as ``np.memmap`` views of the file, serve queries
bit-identically to a fully-loaded open, and never stitch or copy the
owner payload unless a consumer explicitly asks for it (asserted via the
``owner_column_builds`` counter and memmap type checks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.databases.kss import KssTables
from repro.databases.serialization import SerializationError, map_sections
from repro.megis.index import MegisIndex
from repro.megis.session import AnalysisSession, MegisConfig


@pytest.fixture(scope="module")
def index_path(tmp_path_factory, sorted_db, sketch_db, references):
    path = tmp_path_factory.mktemp("mmap") / "world.megis"
    MegisIndex(sorted_db, sketch_db, references).save(path, n_shards=3)
    return path


@pytest.fixture()
def mapped(index_path):
    return MegisIndex.open(index_path, mmap=True)


def _is_memmap_view(array) -> bool:
    """True when ``array`` is (a view of) a ``np.memmap``."""
    while array is not None:
        if isinstance(array, np.memmap):
            return True
        array = getattr(array, "base", None)
    return False


class TestMemmapAttachment:
    def test_kss_csr_sections_are_memmap_views(self, mapped):
        assert mapped.mapped is True
        store = mapped.kss.store()
        assert isinstance(store.taxids, np.memmap)
        assert isinstance(store.offsets, np.memmap)
        assert store.taxids.dtype == np.dtype("<i8")
        for level in store.levels.values():
            assert isinstance(level.stored_taxids, np.memmap)
            assert isinstance(level.stored_offsets, np.memmap)
            assert isinstance(level.full_taxids, np.memmap)
            assert isinstance(level.full_offsets, np.memmap)

    def test_shard_owner_columns_are_memmap_views(self, mapped):
        for shard in mapped.shards(3):
            taxids, offsets = shard.database.owner_columns()
            assert isinstance(taxids, np.memmap)
            assert isinstance(offsets, np.memmap)
            assert taxids.dtype == np.dtype("<u4")
            assert offsets.dtype == np.dtype("<u8")
            # The shard handle's KSS range slices stay memmap-backed too.
            assert _is_memmap_view(shard.kss.store().taxids)

    def test_sharded_kss_slices_work_unchanged(self, mapped, kss_tables):
        """KssTables.from_store + slice_range on memmap columns == in-RAM."""
        store = mapped.kss.store()
        reloaded = KssTables.from_store(store)
        space = 1 << (2 * mapped.k)
        sliced = reloaded.slice_range(0, space // 2)
        expected = kss_tables.slice_range(0, space // 2)
        assert len(sliced) == len(expected)
        queries = [kmer for kmer, _ in expected.entries][:50]
        assert sliced.retrieve(queries) == expected.retrieve(queries)

    def test_default_open_is_not_mapped(self, index_path):
        opened = MegisIndex.open(index_path)
        assert opened.mapped is False
        assert not isinstance(opened.kss.store().taxids, np.memmap)


class TestMemmapServing:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("method,n_ssds", [("mapping", 1),
                                               ("statistical", 3)])
    def test_serves_bit_identically(self, index_path, mapped, sample, backend,
                                    method, n_ssds):
        config = MegisConfig(backend=backend, abundance_method=method,
                             n_ssds=n_ssds)
        expected = AnalysisSession(MegisIndex.open(index_path),
                                   config).analyze(sample.reads)
        got = AnalysisSession(mapped, config).analyze(sample.reads)
        assert got.intersecting_kmers == expected.intersecting_kmers
        assert got.sketch_hits == expected.sketch_hits
        assert got.candidates == expected.candidates
        assert got.profile.fractions == expected.profile.fractions

    def test_query_path_never_materializes_owner_columns(self, index_path,
                                                         sample):
        """The stitched parent owner CSR is never built while serving."""
        mapped = MegisIndex.open(index_path, mmap=True)
        session = AnalysisSession(
            mapped, MegisConfig(backend="numpy",
                                abundance_method="statistical", n_ssds=3)
        )
        first = session.analyze(sample.reads)
        second = session.analyze(sample.reads)
        assert first.candidates and first.candidates == second.candidates
        assert mapped.database.owner_column_builds == 0
        assert mapped.kss.column_builds == 0
        assert mapped.kss.row_materializations == 0
        for shard in mapped.shards(3):
            assert shard.database.owner_column_builds == 0

    def test_explicit_owner_access_materializes_once(self, index_path):
        mapped = MegisIndex.open(index_path, mmap=True)
        eager = MegisIndex.open(index_path)
        taxids, offsets = mapped.database.owner_columns()
        assert mapped.database.owner_column_builds == 1
        expected_taxids, expected_offsets = eager.database.owner_columns()
        assert np.array_equal(taxids, expected_taxids)
        assert np.array_equal(offsets, expected_offsets)
        kmer = mapped.database.kmers[len(mapped.database) // 2]
        assert mapped.database.owners_of(kmer) == eager.database.owners_of(kmer)


class TestMapSectionsErrors:
    def test_rejects_truncated_file(self, tmp_path, index_path):
        truncated = tmp_path / "trunc.megis"
        truncated.write_bytes(index_path.read_bytes()[:64])
        with pytest.raises(SerializationError):
            map_sections(truncated)

    def test_rejects_bad_magic(self, tmp_path):
        bogus = tmp_path / "bogus.megis"
        bogus.write_bytes(b"NOTANIDX" + b"\x00" * 64)
        with pytest.raises(SerializationError, match="bad index magic"):
            map_sections(bogus)

    def test_rejects_short_header(self, tmp_path):
        stub = tmp_path / "stub.megis"
        stub.write_bytes(b"MEGI")
        with pytest.raises(SerializationError, match="shorter than header"):
            map_sections(stub)

    def test_sections_match_bytes_open(self, index_path):
        from repro.databases.serialization import unpack_sections

        by_map = map_sections(index_path)
        by_bytes = unpack_sections(index_path.read_bytes())
        assert set(by_map) == set(by_bytes)
        for name, view in by_map.items():
            assert isinstance(view, np.memmap)
            assert bytes(view) == bytes(by_bytes[name])
