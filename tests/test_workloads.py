"""Tests for CAMI-like workloads and paper-scale dataset specs."""

import pytest

from repro.workloads.cami import CamiDiversity, make_cami_sample, realized_profile
from repro.workloads.datasets import (
    DIVERSITY_LOOKUP_FACTOR,
    cami_spec,
    database_scale_points,
)


class TestCamiSample:
    def test_basic_structure(self):
        sample = make_cami_sample(CamiDiversity.LOW, n_reads=100, seed=1)
        assert sample.n_reads == 100
        assert sample.name == "CAMI-L"
        assert len(sample.present_species()) >= 2

    def test_truth_species_exist_in_references(self):
        sample = make_cami_sample(CamiDiversity.MEDIUM, n_reads=50, seed=2)
        assert sample.present_species() <= set(sample.references.species_taxids)

    def test_diversity_increases_species_count(self):
        counts = {}
        for diversity in CamiDiversity:
            sample = make_cami_sample(diversity, n_reads=50, seed=3)
            counts[diversity] = len(sample.present_species())
        assert counts[CamiDiversity.LOW] < counts[CamiDiversity.MEDIUM]
        assert counts[CamiDiversity.MEDIUM] < counts[CamiDiversity.HIGH]

    def test_reads_come_from_present_species(self):
        sample = make_cami_sample(CamiDiversity.LOW, n_reads=80, seed=4)
        assert {r.true_taxid for r in sample.reads} <= sample.present_species()

    def test_taxonomy_covers_references(self):
        sample = make_cami_sample(CamiDiversity.LOW, n_reads=10, seed=5)
        for taxid in sample.references.species_taxids:
            assert taxid in sample.taxonomy

    def test_deterministic(self):
        a = make_cami_sample(CamiDiversity.HIGH, n_reads=40, seed=6)
        b = make_cami_sample(CamiDiversity.HIGH, n_reads=40, seed=6)
        assert [r.sequence for r in a.reads] == [r.sequence for r in b.reads]

    def test_realized_profile_normalized(self):
        sample = make_cami_sample(CamiDiversity.MEDIUM, n_reads=60, seed=7)
        profile = realized_profile(sample.reads)
        assert profile.total() == pytest.approx(1.0)
        assert profile.present() <= sample.present_species()


class TestDatasetSpec:
    def test_defaults_match_paper(self):
        spec = cami_spec("CAMI-M")
        assert spec.kraken_db_bytes == pytest.approx(293e9)
        assert spec.sorted_db_bytes == pytest.approx(701e9)
        assert spec.cmash_tree_bytes == pytest.approx(6.9e9)
        assert spec.kss_table_bytes == pytest.approx(14e9)
        assert spec.n_reads == 100_000_000

    def test_read_bytes(self):
        spec = cami_spec("CAMI-L")
        assert spec.read_bytes == spec.n_reads * spec.read_length

    def test_lookup_factors_monotonic(self):
        factors = [DIVERSITY_LOOKUP_FACTOR[n] for n in ("CAMI-L", "CAMI-M", "CAMI-H")]
        assert factors == sorted(factors)

    def test_unknown_sample_raises(self):
        with pytest.raises(KeyError):
            cami_spec("CAMI-X")

    def test_scaling(self):
        spec = cami_spec("CAMI-M")
        scaled = spec.scaled_database(0.5)
        assert scaled.kraken_db_bytes == pytest.approx(spec.kraken_db_bytes / 2)
        assert scaled.sorted_db_bytes == pytest.approx(spec.sorted_db_bytes / 2)
        # Sample-side quantities are untouched.
        assert scaled.extracted_kmer_bytes == spec.extracted_kmer_bytes

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            cami_spec("CAMI-M").scaled_database(0)

    def test_scale_points_anchor_at_default(self):
        spec = cami_spec("CAMI-M")
        points = database_scale_points(spec)
        assert points["3x"].sorted_db_bytes == pytest.approx(spec.sorted_db_bytes)
        assert points["1x"].sorted_db_bytes == pytest.approx(spec.sorted_db_bytes / 3)
