"""Tests for the §4.2.1 bucket-pipeline scheduler and its PhaseTimings surface.

The event-queue scheduler models the overlap of bucket *i*'s intersection
with bucket *i+1*'s sort; the pipeline replays its measured Step-1/Step-2
wall times through it and reports overlapped vs. serialized time.
"""

import random

import pytest

from repro.backends import PhaseTimings
from repro.megis.pipeline import (
    BucketPipelineScheduler,
    MegisConfig,
    MegisPipeline,
)
from repro.megis.sorting import sort_cost_weights


class TestScheduler:
    def test_hand_example_single_engine(self):
        # Sorts finish at 2/4/6; the single engine runs 2-5, 5-8, 8-11.
        schedule = BucketPipelineScheduler().schedule([2, 2, 2], [3, 3, 3])
        assert schedule.serialized_ms == 15
        assert schedule.overlapped_ms == 11
        assert schedule.saved_ms == 4
        assert [b.intersect_start_ms for b in schedule.buckets] == [2, 5, 8]

    def test_hand_example_two_engines(self):
        # With two engines each bucket starts as soon as it is sorted.
        schedule = BucketPipelineScheduler(n_engines=2).schedule([2, 2, 2], [3, 3, 3])
        assert schedule.overlapped_ms == 9
        assert [b.intersect_start_ms for b in schedule.buckets] == [2, 4, 6]

    def test_serial_lead_delays_and_is_never_hidden(self):
        # Extraction/selection head work precedes every sort and counts
        # fully in both the serialized and the overlapped timelines.
        schedule = BucketPipelineScheduler().schedule([2, 2], [3, 3], lead_ms=5)
        assert schedule.serialized_ms == 15
        assert schedule.overlapped_ms == 13
        assert [b.sort_start_ms for b in schedule.buckets] == [5, 7]

    def test_lead_only(self):
        schedule = BucketPipelineScheduler().schedule([], [], lead_ms=4)
        assert schedule.serialized_ms == schedule.overlapped_ms == 4

    def test_single_bucket_degenerates_to_serial(self):
        schedule = BucketPipelineScheduler().schedule([5], [7])
        assert schedule.overlapped_ms == schedule.serialized_ms == 12

    def test_empty(self):
        schedule = BucketPipelineScheduler().schedule([], [])
        assert schedule.serialized_ms == 0
        assert schedule.overlapped_ms == 0
        assert schedule.buckets == []

    def test_intersections_run_in_bucket_order(self):
        schedule = BucketPipelineScheduler().schedule([1, 1, 1, 1], [4, 1, 1, 1])
        starts = [b.intersect_start_ms for b in schedule.buckets]
        assert starts == sorted(starts)

    def test_invariants_on_random_durations(self):
        rng = random.Random(3)
        for n_engines in (1, 2, 4):
            scheduler = BucketPipelineScheduler(n_engines=n_engines)
            for _ in range(20):
                n = rng.randrange(0, 12)
                sorts = [rng.uniform(0, 5) for _ in range(n)]
                intersects = [rng.uniform(0, 5) for _ in range(n)]
                schedule = scheduler.schedule(sorts, intersects)
                # The pipeline can never beat either serial resource, nor
                # lose to running everything back to back.
                assert schedule.overlapped_ms <= schedule.serialized_ms + 1e-9
                assert schedule.overlapped_ms >= sum(sorts) - 1e-9
                assert schedule.overlapped_ms >= max(
                    [s + i for s, i in zip(sorts, intersects)], default=0.0
                ) - 1e-9
                for bucket in schedule.buckets:
                    assert bucket.intersect_start_ms >= bucket.sort_end_ms - 1e-9

    def test_more_engines_never_slower(self):
        rng = random.Random(9)
        sorts = [rng.uniform(0, 3) for _ in range(10)]
        intersects = [rng.uniform(0, 3) for _ in range(10)]
        makespans = [
            BucketPipelineScheduler(n_engines=n).schedule(sorts, intersects).overlapped_ms
            for n in (1, 2, 4, 8)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(makespans, makespans[1:]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            BucketPipelineScheduler().schedule([1, 2], [1])

    def test_invalid_engine_count(self):
        with pytest.raises(ValueError):
            BucketPipelineScheduler(n_engines=0)


class TestSortCostWeights:
    def test_nlogn_shape(self):
        weights = sort_cost_weights([0, 1, 2, 1024])
        assert weights[0] == 0.0
        assert weights[1] == 1.0
        assert weights[2] == 2.0
        assert weights[3] == 1024 * 10.0

    def test_monotonic(self):
        weights = sort_cost_weights(range(1, 50))
        assert weights == sorted(weights)


class TestPhaseTimingsOverlapSurface:
    def test_merge_accumulates_overlap(self):
        a = PhaseTimings(serialized_ms=10.0, overlapped_ms=7.0)
        b = PhaseTimings(serialized_ms=4.0, overlapped_ms=4.0)
        a.merge(b)
        assert a.serialized_ms == 14.0
        assert a.overlapped_ms == 11.0
        assert a.overlap_saved_ms == 3.0

    def test_as_dict_exposes_overlap(self):
        d = PhaseTimings(serialized_ms=5.0, overlapped_ms=3.0).as_dict()
        assert d["serialized_ms"] == 5.0
        assert d["overlapped_ms"] == 3.0
        assert d["overlap_saved_ms"] == 2.0

    def test_saved_never_negative(self):
        assert PhaseTimings(serialized_ms=1.0, overlapped_ms=2.0).overlap_saved_ms == 0.0


class TestPipelineOverlapModel:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_analyze_reports_overlap(self, sorted_db, sketch_db, sample, backend):
        pipeline = MegisPipeline(
            sorted_db, sketch_db, sample.references,
            config=MegisConfig(backend=backend),
        )
        result = pipeline.analyze(sample.reads, with_abundance=False)
        timings = result.timings
        assert timings.overlapped_ms > 0
        assert timings.overlapped_ms <= timings.serialized_ms + 1e-9
        # The serial chain is exactly the measured Step-1 + Step-2 stream.
        assert timings.serialized_ms == pytest.approx(
            timings.extract_ms + timings.intersect_ms, rel=1e-6
        )

    def test_multi_sample_reports_overlap_per_sample(
        self, sorted_db, sketch_db, sample
    ):
        pipeline = MegisPipeline(
            sorted_db, sketch_db, sample.references,
            config=MegisConfig(backend="numpy"),
        )
        results = pipeline.analyze_multi(
            [sample.reads[:150], sample.reads[150:300]], with_abundance=False
        )
        for result in results:
            assert result.timings.overlapped_ms > 0
            assert result.timings.overlapped_ms <= result.timings.serialized_ms + 1e-9

    def test_sharded_pipeline_reports_overlap(self, sorted_db, sketch_db, sample):
        pipeline = MegisPipeline(
            sorted_db, sketch_db, sample.references,
            config=MegisConfig(backend="numpy", n_ssds=4),
        )
        result = pipeline.analyze(sample.reads, with_abundance=False)
        assert result.timings.overlapped_ms > 0
        assert result.timings.overlapped_ms <= result.timings.serialized_ms + 1e-9
