"""Tests for the energy model, data movement, PIM, sorter, and cost models."""

import pytest

from repro.perf.cost import cost_efficiency_comparison, speedups_over
from repro.perf.energy import EnergyModel, external_data_movement_bytes
from repro.perf.pim import SieveModel, from_calibration as sieve_from_calibration
from repro.perf.sortaccel import SortingAccelerator
from repro.perf.specs import baseline_system
from repro.perf.timing import TimingModel
from repro.ssd.config import ssd_c, ssd_p
from repro.workloads.datasets import cami_spec


@pytest.fixture(scope="module")
def setup_c():
    system = baseline_system(ssd_c())
    return system, TimingModel(system, cami_spec("CAMI-M")), EnergyModel(system)


class TestEnergyModel:
    def test_energy_positive_with_components(self, setup_c):
        _, model, energy = setup_c
        report = energy.evaluate(model.popt())
        assert report.joules > 0
        assert set(report.component_joules) == {"cpu", "dram", "ssd", "pim", "accel"}
        assert report.component_joules["pim"] == 0.0

    def test_megis_cheapest(self, setup_c):
        _, model, energy = setup_c
        ms = energy.evaluate(model.megis("ms")).joules
        assert ms < energy.evaluate(model.popt()).joules
        assert ms < energy.evaluate(model.aopt()).joules
        assert ms < energy.evaluate(model.sieve()).joules

    def test_paper_band_reductions(self):
        reductions_p, reductions_a, reductions_s = [], [], []
        for ssd in (ssd_c(), ssd_p()):
            system = baseline_system(ssd)
            energy = EnergyModel(system)
            for name in ("CAMI-L", "CAMI-M", "CAMI-H"):
                model = TimingModel(system, cami_spec(name))
                ms = energy.evaluate(model.megis("ms")).joules
                reductions_p.append(energy.evaluate(model.popt()).joules / ms)
                reductions_a.append(energy.evaluate(model.aopt()).joules / ms)
                reductions_s.append(energy.evaluate(model.sieve()).joules / ms)
        # Paper: 5.4x / 15.2x / 1.9x averages (9.8 / 25.7 / 3.5 max).
        assert 3.0 < sum(reductions_p) / 6 < 8.0
        assert 10.0 < sum(reductions_a) / 6 < 25.0
        assert 1.3 < sum(reductions_s) / 6 < 3.5

    def test_sieve_pim_energy_charged(self, setup_c):
        _, model, energy = setup_c
        assert energy.evaluate(model.sieve()).component_joules["pim"] > 0

    def test_accel_energy_negligible(self, setup_c):
        _, model, energy = setup_c
        report = energy.evaluate(model.megis("ms"))
        assert 0 < report.component_joules["accel"] < 0.01 * report.joules


class TestDataMovement:
    def test_paper_band_reduction(self):
        spec = cami_spec("CAMI-M")
        ms = external_data_movement_bytes("MS", spec)
        aopt = external_data_movement_bytes("A-Opt", spec)
        popt = external_data_movement_bytes("P-Opt", spec)
        assert 50 < aopt / ms < 100  # paper: 71.7x
        assert 20 < popt / ms < 40  # paper: 30.1x

    def test_ext_ms_moves_database(self):
        spec = cami_spec("CAMI-M")
        assert external_data_movement_bytes(
            "Ext-MS", spec
        ) > 50 * external_data_movement_bytes("MS", spec)

    def test_abundance_adds_index_bytes(self):
        spec = cami_spec("CAMI-M")
        assert external_data_movement_bytes(
            "MS", spec, abundance=True
        ) > external_data_movement_bytes("MS", spec)

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            external_data_movement_bytes("bogus", cami_spec("CAMI-M"))


class TestSieveModel:
    def test_accelerated_less_than_base(self):
        model = SieveModel()
        assert model.accelerated_compute_seconds(100.0) < 100.0

    def test_amdahl_limit(self):
        model = SieveModel(match_fraction=0.9, match_speedup=1e9)
        assert model.compute_speedup() == pytest.approx(10.0, rel=0.01)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SieveModel().accelerated_compute_seconds(-1.0)

    def test_from_calibration(self):
        assert sieve_from_calibration().match_speedup > 1


class TestSortingAccelerator:
    def test_faster_than_host(self):
        accel = SortingAccelerator()
        assert accel.speedup_over_host(60e9) > 3

    def test_transfer_bound(self):
        accel = SortingAccelerator(throughput=1e12, link_bw=1e9)
        assert accel.sort_seconds(1e9) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SortingAccelerator().sort_seconds(-5)


class TestCostModel:
    def test_rows_and_speedups(self):
        rows = cost_efficiency_comparison(cami_spec("CAMI-M"))
        assert set(rows) == {"P-Opt_P", "A-Opt_P", "P-Opt_C", "A-Opt_C", "MS_C"}
        speedups = speedups_over(rows, "P-Opt_P")
        assert speedups["P-Opt_P"] == pytest.approx(1.0)
        assert speedups["MS_C"] > 1.0  # cheap MegIS beats the rich baseline
        assert speedups["P-Opt_C"] < speedups["P-Opt_P"]

    def test_throughput_per_dollar_favors_megis(self):
        rows = cost_efficiency_comparison(cami_spec("CAMI-M"))
        assert (
            rows["MS_C"].throughput_per_dollar
            > 10 * rows["P-Opt_P"].throughput_per_dollar
        )
