"""Smoke tests: every example script must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    assert {"quickstart.py", "clinical_outbreak.py", "multi_sample_study.py",
            "design_space.py", "full_workflow.py"} <= set(EXAMPLES)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"
