"""Tests for ISP buffer planning (§4.3.1) and the request scheduler."""

import pytest

from repro.megis.buffers import (
    buffered_design_bytes,
    dram_bandwidth_demand,
    plan_buffers,
    query_batch_bytes,
    stream_register_bytes,
)
from repro.ssd.config import NandGeometry, ssd_c, ssd_p
from repro.ssd.dram import InternalDram
from repro.ssd.scheduler import (
    LatencyStats,
    OpType,
    Request,
    RequestScheduler,
)
from repro.workloads.datasets import cami_spec


class TestBufferSizing:
    def test_paper_example_batch_size(self):
        # §4.3.1: 8 channels, 4 dies/channel, 2 planes/die, 16-KiB pages
        # -> two 1-MiB batches.
        geometry = NandGeometry(
            channels=8, dies_per_channel=4, planes_per_die=2,
            blocks_per_plane=2048, pages_per_block=588, page_bytes=16 * 1024,
        )
        assert query_batch_bytes(geometry) == 1 << 20

    def test_registers_cheaper_than_staging_buffers(self):
        for config in (ssd_c(), ssd_p()):
            registers = stream_register_bytes(config.geometry)
            staged = buffered_design_bytes(config.geometry)
            assert registers < staged / 1000

    def test_plan_fits_internal_dram(self):
        for config in (ssd_c(), ssd_p()):
            dram = InternalDram(config.dram_bytes, config.dram_bw)
            plan = plan_buffers(config)
            plan.apply(dram)
            assert dram.used_bytes == plan.total_bytes()
            plan.release(dram)
            assert dram.used_bytes == 0

    def test_double_buffering(self):
        plan = plan_buffers(ssd_c())
        allocations = plan.allocations()
        assert allocations["query_batch_0"] == allocations["query_batch_1"]


class TestDramBandwidthDemand:
    def test_paper_claim_on_ssd_p(self):
        # §4.3.1: at full SSD-P internal bandwidth, MegIS needs only
        # ~2.4 GB/s of DRAM bandwidth.  Our byte counts give the same
        # order: single-digit GB/s, far below the flash stream.
        report = dram_bandwidth_demand(ssd_p(), cami_spec("CAMI-M"))
        assert 0.2e9 < report.total_demand < 4e9
        assert report.total_demand < ssd_p().internal_read_bw / 10

    def test_demand_fits_lpddr4(self):
        for config in (ssd_c(), ssd_p()):
            report = dram_bandwidth_demand(config, cami_spec("CAMI-M"))
            assert report.fits(config.dram_bw)

    def test_more_internal_bw_more_demand(self):
        low = dram_bandwidth_demand(ssd_c(), cami_spec("CAMI-M"))
        high = dram_bandwidth_demand(ssd_p(), cami_spec("CAMI-M"))
        assert high.total_demand > low.total_demand

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            dram_bandwidth_demand(ssd_c(), cami_spec("CAMI-M"),
                                  intersection_fraction=2.0)


class TestRequestScheduler:
    def tiny(self):
        return RequestScheduler(
            NandGeometry(
                channels=2, dies_per_channel=2, planes_per_die=1,
                blocks_per_plane=4, pages_per_block=8, page_bytes=4096,
            ),
            t_read_us=50.0, t_prog_us=700.0, channel_bw=1e9,
        )

    def test_single_read_latency(self):
        scheduler = self.tiny()
        done = scheduler.run([Request(0.0, OpType.READ, 0, 0)])
        expected = 50e-6 + 4096 / 1e9
        assert done[0].latency_s == pytest.approx(expected)

    def test_single_write_latency(self):
        scheduler = self.tiny()
        done = scheduler.run([Request(0.0, OpType.WRITE, 0, 0)])
        expected = 4096 / 1e9 + 700e-6
        assert done[0].latency_s == pytest.approx(expected)

    def test_same_die_serializes(self):
        scheduler = self.tiny()
        done = scheduler.run([
            Request(0.0, OpType.READ, 0, 0),
            Request(0.0, OpType.READ, 0, 0),
        ])
        assert done[1].latency_s > done[0].latency_s

    def test_different_dies_overlap_sensing(self):
        scheduler = self.tiny()
        same = scheduler.run([
            Request(0.0, OpType.READ, 0, 0),
            Request(0.0, OpType.READ, 0, 0),
        ])[1].latency_s
        different = scheduler.run([
            Request(0.0, OpType.READ, 0, 0),
            Request(0.0, OpType.READ, 0, 1),
        ])[1].latency_s
        assert different < same

    def test_write_blocks_die_not_channel(self):
        scheduler = self.tiny()
        done = scheduler.run([
            Request(0.0, OpType.WRITE, 0, 0),
            Request(0.0, OpType.READ, 0, 1),
        ])
        # The read on die 1 need not wait for die 0's program, only for
        # the channel transfer.
        assert done[1].latency_s < done[0].latency_s

    def test_unsorted_arrivals_rejected(self):
        scheduler = self.tiny()
        with pytest.raises(ValueError):
            scheduler.run([
                Request(1.0, OpType.READ, 0, 0),
                Request(0.0, OpType.READ, 0, 0),
            ])

    def test_latency_grows_toward_saturation(self):
        scheduler = RequestScheduler(ssd_c().geometry)
        saturation = scheduler.saturation_rate()
        light = scheduler.measure_latency(0.05 * saturation, duration_s=0.02)
        heavy = scheduler.measure_latency(0.95 * saturation, duration_s=0.02)
        assert heavy.p99_s > light.p99_s
        assert heavy.mean_s > light.mean_s

    def test_light_load_latency_near_service_time(self):
        scheduler = RequestScheduler(ssd_c().geometry)
        stats = scheduler.measure_latency(1000, duration_s=0.05)
        service = 52.5e-6 + 16384 / 1.2e9
        assert stats.p50_s < 2 * service

    def test_empty_stats(self):
        stats = LatencyStats.from_completions([])
        assert stats.count == 0

    def test_invalid_workload_params(self):
        scheduler = self.tiny()
        with pytest.raises(ValueError):
            scheduler.poisson_random_reads(0, 1)
        with pytest.raises(ValueError):
            Request(-1.0, OpType.READ, 0, 0)
