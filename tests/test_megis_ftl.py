"""Tests for MegIS FTL: placement, streaming order, metadata accounting."""


import pytest

from repro.megis.ftl import MegisFtl
from repro.ssd.config import NandGeometry, ssd_c


def geometry(**overrides):
    params = dict(
        channels=4,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=16,
        page_bytes=4096,
    )
    params.update(overrides)
    return NandGeometry(**params)


class TestPlacement:
    def test_even_striping_across_channels(self):
        ftl = MegisFtl(geometry())
        layout = ftl.place_database("db", 4096 * 64)
        lengths = {len(seq) for seq in layout.block_sequences.values()}
        assert len(lengths) == 1  # same block count per channel
        assert set(layout.block_sequences) == set(range(4))

    def test_same_slot_offsets_across_channels(self):
        # Active blocks at the same page offset in every channel (§4.5).
        ftl = MegisFtl(geometry())
        layout = ftl.place_database("db", 4096 * 200)
        per_channel = list(layout.block_sequences.values())
        assert all(seq == per_channel[0] for seq in per_channel[1:])

    def test_read_order_round_robin(self):
        g = geometry()
        ftl = MegisFtl(g)
        layout = ftl.place_database("db", 4096 * 4 * 3)  # 12 pages
        order = list(layout.read_order())
        assert len(order) == 12
        # Channels rotate fastest.
        assert [a.channel for a in order[:4]] == [0, 1, 2, 3]
        # Same page offset within a rotation.
        assert len({(a.die, a.plane, a.block, a.page) for a in order[:4]}) == 1

    def test_read_order_covers_exact_page_count(self):
        ftl = MegisFtl(geometry())
        layout = ftl.place_database("db", 4096 * 37 + 1)  # 38 pages
        assert len(list(layout.read_order())) == 38

    def test_read_order_advances_pages_before_blocks(self):
        g = geometry()
        ftl = MegisFtl(g)
        pages = g.pages_per_block * g.channels + g.channels  # spill into slot 2
        layout = ftl.place_database("db", 4096 * pages)
        order = list(layout.read_order())
        blocks_seen = {(a.die, a.plane, a.block) for a in order[: g.pages_per_block * g.channels]}
        assert len(blocks_seen) == 1

    def test_two_databases_disjoint_blocks(self):
        ftl = MegisFtl(geometry())
        a = ftl.place_database("a", 4096 * 100)
        b = ftl.place_database("b", 4096 * 100)
        blocks_a = {
            (c, *slot) for c, seq in a.block_sequences.items() for slot in seq
        }
        blocks_b = {
            (c, *slot) for c, seq in b.block_sequences.items() for slot in seq
        }
        assert not blocks_a & blocks_b

    def test_duplicate_name_rejected(self):
        ftl = MegisFtl(geometry())
        ftl.place_database("db", 4096)
        with pytest.raises(ValueError):
            ftl.place_database("db", 4096)

    def test_capacity_exhaustion(self):
        g = geometry(blocks_per_plane=1)
        ftl = MegisFtl(g)
        with pytest.raises(RuntimeError):
            ftl.place_database("huge", g.capacity_bytes * 10)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MegisFtl(geometry()).place_database("db", 0)


class TestMetadata:
    def test_paper_scale_l2p_size(self):
        # 4-TB-class database -> ~1.3 MB of L2P (paper §4.5).
        ftl = MegisFtl(ssd_c().geometry)
        db_bytes = int(3.5e12)
        ftl.place_database("kmer_db", db_bytes)
        l2p = ftl.l2p_metadata_bytes("kmer_db")
        total = ftl.total_metadata_bytes("kmer_db")
        assert 1.0e6 < l2p < 2.0e6
        assert total < 3.2e6
        assert total > l2p

    def test_metadata_tiny_vs_page_level(self):
        from repro.ssd.ftl import PageLevelFTL
        from repro.ssd.nand import NandFlash

        config = ssd_c()
        baseline = PageLevelFTL(NandFlash(config.geometry)).metadata_bytes()
        ftl = MegisFtl(config.geometry)
        ftl.place_database("db", int(3.5e12))
        assert ftl.total_metadata_bytes("db") < baseline / 1000

    def test_read_counts_recorded(self):
        ftl = MegisFtl(geometry())
        ftl.place_database("db", 4096 * 8)
        consumed = list(ftl.stream_database("db"))
        assert len(consumed) == 8
        assert sum(ftl.read_counts.values()) == 8
