"""Tests for k-mer extraction and counting (KMC stand-in)."""

import pytest
from hypothesis import given, strategies as st

from repro.sequences.encoding import canonical_kmer, encode_kmer
from repro.sequences.kmers import KmerCounter, extract_kmers, iter_kmers, kmer_spectrum

dna = st.text(alphabet="ACGT", min_size=0, max_size=80)


def naive_kmers(seq, k, canonical=True):
    out = []
    for i in range(len(seq) - k + 1):
        value = encode_kmer(seq[i : i + k])
        out.append(canonical_kmer(value, k) if canonical else value)
    return out


class TestExtraction:
    def test_simple(self):
        assert extract_kmers("ACGT", 2, canonical=False).tolist() == [
            encode_kmer("AC"),
            encode_kmer("CG"),
            encode_kmer("GT"),
        ]

    def test_too_short_returns_empty(self):
        assert extract_kmers("AC", 5).size == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            extract_kmers("ACGT", 0)

    def test_iter_matches_extract(self):
        seq = "GATTACAGATTACA"
        assert list(iter_kmers(seq, 5)) == extract_kmers(seq, 5).tolist()

    def test_long_k_object_dtype(self):
        seq = "ACGT" * 20
        kmers = extract_kmers(seq, 40, canonical=False)
        assert kmers.dtype == object
        assert kmers[0] == encode_kmer(seq[:40])

    @given(dna, st.integers(min_value=1, max_value=12))
    def test_matches_naive(self, seq, k):
        got = extract_kmers(seq, k, canonical=False).tolist()
        assert got == naive_kmers(seq, k, canonical=False)

    @given(dna, st.integers(min_value=1, max_value=12))
    def test_canonical_matches_naive(self, seq, k):
        got = extract_kmers(seq, k, canonical=True).tolist()
        assert got == naive_kmers(seq, k, canonical=True)

    @given(dna, st.integers(min_value=1, max_value=12))
    def test_count_is_positions(self, seq, k):
        assert extract_kmers(seq, k).size == max(0, len(seq) - k + 1)


class TestSpectrum:
    def test_counts(self):
        spectrum = kmer_spectrum("AAAA", 2, canonical=False)
        assert spectrum == {encode_kmer("AA"): 3}


class TestKmerCounter:
    def test_total_and_distinct(self):
        counter = KmerCounter(k=3, canonical=False)
        counter.add_sequence("AAAAA")  # 3 x AAA
        counter.add_sequence("AAACT")  # AAA, AAC, ACT
        assert counter.total() == 6
        assert counter.distinct() == 3

    def test_selected_sorted_and_excluded(self):
        counter = KmerCounter(k=3, canonical=False)
        counter.add_sequences(["AAAAA", "AAACT"])
        selected = counter.selected(min_count=2)
        assert selected.tolist() == [encode_kmer("AAA")]
        all_kmers = counter.selected(min_count=1)
        assert all_kmers.tolist() == sorted(all_kmers.tolist())

    def test_max_count_excludes_common(self):
        counter = KmerCounter(k=3, canonical=False)
        counter.add_sequences(["AAAAA", "AAACT"])
        selected = counter.selected(min_count=1, max_count=1)
        assert encode_kmer("AAA") not in selected.tolist()

    def test_invalid_min_count(self):
        counter = KmerCounter(k=3)
        with pytest.raises(ValueError):
            counter.selected(min_count=0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KmerCounter(k=0)

    @given(st.lists(dna.filter(lambda s: len(s) >= 4), min_size=1, max_size=5))
    def test_selected_is_distinct_subset(self, seqs):
        counter = KmerCounter(k=4, canonical=False)
        counter.add_sequences(seqs)
        selected = counter.selected().tolist()
        assert len(selected) == len(set(selected))
        assert set(selected) <= set(counter.counts)
