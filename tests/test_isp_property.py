"""Property tests of the whole ISP data path on randomly generated worlds.

Rather than reusing the shared fixture, these tests regenerate small
reference collections with random shapes (genera counts, genome lengths,
divergences, sketch fractions) and assert the load-bearing equivalences on
each: in-storage intersection == software intersection, streaming KSS
retrieval == tree lookups, and MegIS == Metalign end to end.  This guards
the invariants against structural edge cases (single species, tiny genomes,
dense/sparse sketches) that a fixed fixture would never hit.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.databases.kss import KssTables
from repro.databases.sketch import SketchDatabase, TernarySearchTree
from repro.databases.sorted_db import SortedKmerDatabase
from repro.megis.isp import IspStepTwo, TaxIdRetriever
from repro.sequences.generator import GenomeGenerator
from repro.sequences.reads import ReadSimulator

world_strategy = st.fixed_dictionaries(
    {
        "n_genera": st.integers(1, 3),
        "species_per_genus": st.integers(1, 3),
        "genome_length": st.integers(120, 600),
        "divergence": st.floats(0.0, 0.15),
        "sketch_fraction": st.sampled_from([0.1, 0.3, 0.7, 1.0]),
        "seed": st.integers(0, 10_000),
    }
)

K = 16
SMALLER = (10, 6)


def build_world(params):
    references = GenomeGenerator(
        n_genera=params["n_genera"],
        species_per_genus=params["species_per_genus"],
        genome_length=params["genome_length"],
        divergence=params["divergence"],
        seed=params["seed"],
    ).generate()
    database = SortedKmerDatabase.build(references, k=K)
    sketch = SketchDatabase.build(
        references, k_max=K, smaller_ks=SMALLER,
        sketch_fraction=params["sketch_fraction"], seed=params["seed"],
    )
    return references, database, sketch


@given(world_strategy, st.integers(1, 7))
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_isp_matches_reference_on_random_worlds(params, n_channels):
    references, database, sketch = build_world(params)
    kss = KssTables(sketch)
    # Query: a slice of database k-mers plus guaranteed misses.
    query = sorted(set(database.kmers[::3] + [0, (1 << (2 * K)) - 1]))
    isp = IspStepTwo(database, kss, n_channels=n_channels)
    intersecting, retrieved = isp.run(query)
    assert intersecting == database.intersect(query)
    tree = TernarySearchTree(sketch)
    for kmer in intersecting:
        assert retrieved[kmer] == tree.lookup(kmer) == sketch.lookup(kmer)


@given(world_strategy)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_kss_equals_tree_on_random_worlds(params):
    _, database, sketch = build_world(params)
    kss = KssTables(sketch)
    tree = TernarySearchTree(sketch)
    queries = sorted(sketch.tables[K])[:60]
    retrieved = TaxIdRetriever(kss).retrieve(queries)
    for q in queries:
        assert retrieved[q] == tree.lookup(q)


@given(world_strategy, st.integers(20, 80))
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_megis_equals_metalign_on_random_worlds(params, n_reads):
    from repro.megis.pipeline import MegisPipeline
    from repro.tools.metalign import MetalignPipeline

    references, database, sketch = build_world(params)
    taxids = references.species_taxids
    profile = {t: 1.0 for t in taxids[: max(1, len(taxids) // 2)]}
    reads = ReadSimulator(read_length=80, error_rate=0.01,
                          seed=params["seed"]).simulate(references, profile, n_reads)
    ours = MegisPipeline(database, sketch, references).analyze(reads)
    theirs = MetalignPipeline(database, sketch, references).analyze(reads)
    assert ours.intersecting_kmers == theirs.intersecting_kmers
    assert ours.candidates == theirs.candidates
    assert ours.profile.fractions == theirs.profile.fractions
