"""Tests for the NVMe command extensions and FTL metadata swapping."""

import pytest

from repro.megis.commands import (
    CommandProcessor,
    HostStep,
    MegisInit,
    MegisStep,
    MegisWrite,
    ProtocolError,
    SsdMode,
)
from repro.megis.ftl import MegisFtl
from repro.ssd.config import ssd_c
from repro.ssd.device import SSD


@pytest.fixture()
def processor():
    ssd = SSD(ssd_c())
    megis_ftl = MegisFtl(ssd.config.geometry)
    megis_ftl.place_database("kmer_db", int(1e12))
    return CommandProcessor(ssd, megis_ftl)


class TestProtocol:
    def test_starts_in_baseline_mode(self, processor):
        assert processor.mode is SsdMode.BASELINE

    def test_init_enters_acceleration(self, processor):
        processor.megis_init(MegisInit(0, 1 << 30))
        assert processor.mode is SsdMode.ACCELERATION
        assert processor.host_buffer_bytes == 1 << 30

    def test_double_init_rejected(self, processor):
        processor.megis_init(MegisInit(0, 1 << 30))
        with pytest.raises(ProtocolError):
            processor.megis_init(MegisInit(0, 1 << 30))

    def test_init_requires_buffer(self, processor):
        with pytest.raises(ProtocolError):
            processor.megis_init(MegisInit(0, 0))

    def test_step_outside_acceleration_rejected(self, processor):
        with pytest.raises(ProtocolError):
            processor.megis_step(MegisStep(HostStep.SORTING))

    def test_step_toggles(self, processor):
        processor.megis_init(MegisInit(0, 1))
        assert processor.megis_step(MegisStep(HostStep.SORTING)) == "start"
        assert processor.megis_step(MegisStep(HostStep.SORTING)) == "end"

    def test_step_cannot_restart(self, processor):
        processor.megis_init(MegisInit(0, 1))
        processor.megis_step(MegisStep(HostStep.SORTING))
        processor.megis_step(MegisStep(HostStep.SORTING))
        with pytest.raises(ProtocolError):
            processor.megis_step(MegisStep(HostStep.SORTING))

    def test_write_only_during_extraction(self, processor):
        processor.megis_init(MegisInit(0, 1))
        with pytest.raises(ProtocolError):
            processor.megis_write(MegisWrite(lpa=0))
        processor.megis_step(MegisStep(HostStep.KMER_EXTRACTION))
        processor.megis_write(MegisWrite(lpa=0))
        assert processor.ssd.ftl.translate(0) is not None

    def test_finish_requires_steps_closed(self, processor):
        processor.megis_init(MegisInit(0, 1))
        processor.megis_step(MegisStep(HostStep.SORTING))
        with pytest.raises(ProtocolError):
            processor.finish()

    def test_finish_returns_to_baseline(self, processor):
        processor.megis_init(MegisInit(0, 1))
        processor.megis_step(MegisStep(HostStep.KMER_EXTRACTION))
        processor.megis_step(MegisStep(HostStep.KMER_EXTRACTION))
        processor.finish()
        assert processor.mode is SsdMode.BASELINE

    def test_finish_outside_acceleration_rejected(self, processor):
        with pytest.raises(ProtocolError):
            processor.finish()


class TestMetadataSwap:
    def test_extraction_end_swaps_l2p(self, processor):
        dram = processor.ssd.dram
        assert "baseline_l2p" in dram.allocations()
        processor.megis_init(MegisInit(0, 1))
        processor.megis_step(MegisStep(HostStep.KMER_EXTRACTION))
        processor.megis_step(MegisStep(HostStep.KMER_EXTRACTION))
        assert "baseline_l2p" not in dram.allocations()
        assert "megis_l2p" in dram.allocations()
        # MegIS metadata is tiny compared to the page-level table.
        assert dram.allocation("megis_l2p") < processor.ssd.ftl.metadata_bytes() / 100

    def test_finish_restores_baseline_l2p(self, processor):
        processor.megis_init(MegisInit(0, 1))
        processor.megis_step(MegisStep(HostStep.KMER_EXTRACTION))
        processor.megis_step(MegisStep(HostStep.KMER_EXTRACTION))
        processor.finish()
        dram = processor.ssd.dram
        assert "baseline_l2p" in dram.allocations()
        assert "megis_l2p" not in dram.allocations()

    def test_swap_frees_dram_for_isp(self, processor):
        dram = processor.ssd.dram
        before = dram.free_bytes
        processor.megis_init(MegisInit(0, 1))
        processor.megis_step(MegisStep(HostStep.KMER_EXTRACTION))
        processor.megis_step(MegisStep(HostStep.KMER_EXTRACTION))
        assert dram.free_bytes > before
