"""Executor layer, paced backend, and measured-overlap plumbing."""

from __future__ import annotations

import threading
import time

import pytest

from repro.backends import PhaseTimings, available_backends, get_backend
from repro.backends.paced import PacedStepTwoBackend
from repro.megis.executors import (
    SerialExecutor,
    ThreadedExecutor,
    available_executors,
    get_executor,
    parse_spec,
)
from repro.megis.host import Bucket, BucketSet, KmerBucketPartitioner
from repro.megis.isp import IspStepTwo
from repro.megis.session import AnalysisSession, MegisConfig


class TestSpecs:
    def test_families(self):
        assert available_executors() == ("serial", "threads", "processes")

    @pytest.mark.parametrize("spec,expected", [
        ("serial", ("serial", None)),
        ("threads", ("threads", None)),
        ("threads:4", ("threads", 4)),
        ("processes", ("processes", None)),
        ("processes:4", ("processes", 4)),
    ])
    def test_parse(self, spec, expected):
        assert parse_spec(spec) == expected

    @pytest.mark.parametrize("spec", [
        "fibers", "serial:2", "threads:zero", "threads:0", "threads:-1",
        "processes:0", "processes:-3", "processes:two",
    ])
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_spec(spec)

    def test_errors_enumerate_registered_families(self):
        """Usage errors list the live registry, not a hard-coded string."""
        with pytest.raises(ValueError) as unknown:
            parse_spec("fibers")
        for family in available_executors():
            assert family in str(unknown.value)
        assert "'processes:N'" in str(unknown.value)
        with pytest.raises(ValueError, match="spec 'processes:0'"):
            parse_spec("processes:0")

    def test_get_executor_resolution(self):
        assert get_executor(None) is get_executor("serial")
        threaded = get_executor("threads:3")
        assert isinstance(threaded, ThreadedExecutor)
        assert threaded.workers == 3
        assert get_executor(threaded) is threaded

    def test_config_validates_executor(self):
        assert MegisConfig(executor="threads:2").executor == "threads:2"
        with pytest.raises(ValueError):
            MegisConfig(executor="fibers")


class TestSerialExecutor:
    def test_runs_inline_in_order(self):
        order = []
        executor = SerialExecutor()
        results = executor.map_ordered(lambda i: (order.append(i), i * 2)[1],
                                       range(5))
        assert results == [0, 2, 4, 6, 8]
        assert order == list(range(5))
        assert executor.workers == 1

    def test_exception_lands_in_future(self):
        future = SerialExecutor().submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result()


class TestThreadedExecutor:
    def test_map_ordered_returns_item_order(self):
        executor = ThreadedExecutor(4)
        try:
            barrier = threading.Barrier(4, timeout=10)

            def task(i):
                if i < 4:
                    barrier.wait()  # only passable if tasks overlap
                return i * i

            assert executor.map_ordered(task, range(8)) == [
                i * i for i in range(8)
            ]
        finally:
            executor.shutdown()

    def test_lazy_pool_and_shutdown(self):
        executor = ThreadedExecutor(2)
        assert executor._pool is None
        assert executor.submit(lambda: 7).result() == 7
        assert executor._pool is not None
        executor.shutdown()
        assert executor._pool is None
        assert executor.name == "threads:2"

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(0)


class TestExecutorDrivenStepTwo:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_concurrent_buckets_bit_identical(self, sorted_db, kss_tables,
                                              sample, backend):
        """Per-bucket executor tasks == the serial bucketed run, exactly."""
        partitioner = KmerBucketPartitioner(k=sorted_db.k, n_buckets=8,
                                            backend=backend)
        bucket_set = partitioner.partition(sample.reads)
        serial = IspStepTwo(sorted_db, kss_tables, backend=backend)
        threaded = IspStepTwo(sorted_db, kss_tables, backend=backend,
                              executor="threads:4")
        expected = serial.run_bucket_set(bucket_set)
        got = threaded.run_bucket_set(bucket_set)
        assert got[0] == expected[0]
        assert got[1] == expected[1]
        assert threaded.executor_name == "threads:4"
        # One logical pass over the database either way.
        assert threaded.timings.db_stream_passes == 1
        assert threaded.timings.step2_wall_ms > 0

    def test_session_executor_config_is_bit_identical(self, sorted_db,
                                                      sketch_db, references,
                                                      sample):
        from repro.megis.index import MegisIndex

        index = MegisIndex(sorted_db, sketch_db, references)
        serial = AnalysisSession(index, MegisConfig(
            backend="numpy", abundance_method="statistical"))
        threaded = AnalysisSession(index, MegisConfig(
            backend="numpy", abundance_method="statistical",
            executor="threads:2"))
        a = serial.analyze(sample.reads)
        b = threaded.analyze(sample.reads)
        assert a.intersecting_kmers == b.intersecting_kmers
        assert a.sketch_hits == b.sketch_hits
        assert a.candidates == b.candidates
        assert a.profile.fractions == b.profile.fractions


class TestMeasuredBucketTimings:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_backends_record_per_bucket_wall_times(self, sorted_db, backend):
        query = sorted_db.kmers[::2]
        mid = query[len(query) // 2]
        space = 1 << (2 * sorted_db.k)
        buckets = [(0, mid, [q for q in query if q < mid]),
                   (mid, space, [q for q in query if q >= mid])]
        timings = PhaseTimings()
        get_backend(backend).intersect_bucketed(sorted_db, buckets, 4, timings)
        assert [(lo, hi) for lo, hi, _ in timings.measured_buckets] == [
            (0, mid), (mid, space)
        ]
        assert all(ms >= 0 for _, _, ms in timings.measured_buckets)

    def test_scheduler_replays_measured_durations(self):
        """Measured slices matching the sample's buckets replace the model."""
        from repro.megis.session import AnalysisSession as Session

        buckets = BucketSet(k=10, buckets=[
            Bucket(index=0, lo=0, hi=100, kmers=[1, 2]),
            Bucket(index=1, lo=100, hi=200, kmers=[150]),
        ])
        timings = PhaseTimings(intersect_ms=30.0)
        timings.record_bucket(0, 100, 20.0)
        timings.record_bucket(100, 200, 10.0)
        assert Session._measured_bucket_ms(timings, buckets) == [20.0, 10.0]
        # A sharded/batched run logs different slices -> fall back to model.
        mismatched = PhaseTimings(intersect_ms=30.0)
        mismatched.record_bucket(0, 50, 20.0)
        mismatched.record_bucket(50, 200, 10.0)
        assert Session._measured_bucket_ms(mismatched, buckets) is None
        short = PhaseTimings(intersect_ms=30.0)
        short.record_bucket(0, 100, 20.0)
        assert Session._measured_bucket_ms(short, buckets) is None

    def test_analyze_models_overlap_from_measured_buckets(self, sorted_db,
                                                          sketch_db, sample):
        from repro.megis.index import MegisIndex

        index = MegisIndex(sorted_db, sketch_db)
        session = AnalysisSession(index, MegisConfig(
            backend="numpy", abundance_method="statistical", n_buckets=6))
        result = session.analyze(sample.reads)
        measured = result.timings.measured_buckets
        assert len(measured) == result.n_buckets
        assert result.timings.serialized_ms >= result.timings.overlapped_ms > 0

    def test_merge_and_copy_carry_measured_state(self):
        a = PhaseTimings(intersect_ms=5.0, step2_wall_ms=4.0)
        a.record_bucket(0, 10, 2.5)
        b = a.copy()
        b.record_bucket(10, 20, 1.5)
        assert len(a.measured_buckets) == 1 and len(b.measured_buckets) == 2
        a.merge(b)
        assert len(a.measured_buckets) == 3
        assert a.step2_wall_ms == 8.0
        assert "step2_wall_ms" in a.as_dict()


class TestMeasuredStepOne:
    def test_measured_step_one_requires_complete_set(self):
        buckets = [
            Bucket(index=0, lo=0, hi=10, kmers=[1], sort_ms=2.0),
            Bucket(index=1, lo=10, hi=20, kmers=[12], sort_ms=3.0),
        ]
        measured = BucketSet(k=5, buckets=buckets, lead_ms=1.0)
        assert measured.measured_step_one_ms() == [1.0, 2.0, 3.0]
        # No lead (or any unmeasured sort) -> fall back to the cost model.
        assert BucketSet(k=5, buckets=buckets).measured_step_one_ms() is None
        buckets[1].sort_ms = None
        assert measured.measured_step_one_ms() is None

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_partitioner_records_step_one_wall_times(self, sorted_db, sample,
                                                     backend):
        partitioner = KmerBucketPartitioner(k=sorted_db.k, n_buckets=6,
                                            backend=backend)
        bucket_set = partitioner.partition(sample.reads)
        assert bucket_set.lead_ms is not None and bucket_set.lead_ms > 0
        assert all(b.sort_ms is not None and b.sort_ms >= 0
                   for b in bucket_set.buckets)
        measured = bucket_set.measured_step_one_ms()
        assert measured is not None
        assert len(measured) == len(bucket_set.buckets) + 1

    def test_grouped_partition_is_bit_identical_across_backends(self, sorted_db,
                                                                sample):
        """The grouped (lead/sort split) restructure changes timing
        attribution only: bucket contents stay identical between the
        vectorized and Counter paths."""
        columnar = KmerBucketPartitioner(k=sorted_db.k, n_buckets=8,
                                         backend="numpy")
        counted = KmerBucketPartitioner(k=sorted_db.k, n_buckets=8,
                                        backend="python")
        a = columnar.partition(sample.reads)
        b = counted.partition(sample.reads)
        assert [(x.lo, x.hi) for x in a.buckets] == [
            (x.lo, x.hi) for x in b.buckets
        ]
        for bucket_a, bucket_b in zip(a.buckets, b.buckets):
            assert [int(v) for v in bucket_a.kmers] == list(bucket_b.kmers)
            assert bucket_a.is_sorted()


class TestPacedBackend:
    def test_registered(self):
        assert "paced" in available_backends()
        assert get_backend("paced") is get_backend("paced")

    def test_bit_identical_to_inner(self, sorted_db, kss_tables, sample):
        partitioner = KmerBucketPartitioner(k=sorted_db.k, n_buckets=6,
                                            backend="numpy")
        bucket_set = partitioner.partition(sample.reads)
        paced = PacedStepTwoBackend("numpy", mb_per_s=1e9)
        assert paced.columnar is True
        reference = IspStepTwo(sorted_db, kss_tables, backend="numpy")
        timed = IspStepTwo(sorted_db, kss_tables, backend=paced)
        assert timed.backend_name == "paced"
        expected = reference.run_bucket_set(bucket_set)
        got = timed.run_bucket_set(bucket_set)
        assert got[0] == expected[0]
        assert got[1] == expected[1]

    def test_pacing_adds_modeled_stream_wall_time(self, sorted_db):
        query = sorted_db.kmers[::2]
        slow = PacedStepTwoBackend("numpy", mb_per_s=0.05)
        timings = PhaseTimings()
        start = time.perf_counter()
        result = slow.intersect(sorted_db, query, 4, timings)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        streamed_mb = len(sorted_db) * 5 / 1e6  # k=20 -> 5-byte records
        expected_ms = streamed_mb / 0.05 * 1e3
        assert result == get_backend("numpy").intersect(sorted_db, query, 4)
        assert elapsed_ms >= 0.8 * expected_ms
        assert timings.intersect_ms >= 0.8 * expected_ms

    def test_paced_sharded_batch_matches_numpy(self, sorted_db, kss_tables,
                                               sample):
        from repro.megis.multissd import MultiSsdStepTwo

        partitioner = KmerBucketPartitioner(k=sorted_db.k, n_buckets=6,
                                            backend="numpy")
        samples = [
            [(b.lo, b.hi, b.kmers)
             for b in partitioner.partition(reads).buckets]
            for reads in (sample.reads[:150], sample.reads[150:300])
        ]
        reference = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=3,
                                    backend="numpy").run_multi(samples)
        paced = MultiSsdStepTwo(
            sorted_db, kss_tables, n_ssds=3,
            backend=PacedStepTwoBackend("numpy", mb_per_s=1e9),
        ).run_multi(samples)
        assert paced == reference

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            PacedStepTwoBackend("numpy", mb_per_s=0)

    def test_env_default_bandwidth(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACED_MBPS", "123.5")
        assert PacedStepTwoBackend("numpy").mb_per_s == 123.5

    def test_retrieve_paces_by_kss_stream_volume(self, sorted_db, kss_tables):
        """KSS retrieval (§4.3.2's second flash stream) is paced too."""
        query = [int(x) for x in sorted_db.kmers[::3]]
        reference = get_backend("numpy").retrieve(kss_tables, query)
        streamed = kss_tables.size_bytes()
        assert streamed > 0
        mb_per_s = streamed / 1e6 / 0.15  # ~150 ms modeled stream
        paced = PacedStepTwoBackend("numpy", mb_per_s=mb_per_s)
        timings = PhaseTimings()
        start = time.perf_counter()
        result = paced.retrieve(kss_tables, query, timings)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        expected_ms = streamed / (mb_per_s * 1e6) * 1e3
        assert result == reference  # pacing adds wall time, never work
        assert elapsed_ms >= 0.8 * expected_ms
        assert timings.retrieve_ms >= 0.8 * expected_ms
        assert timings.kss_bytes_streamed == streamed
        assert "kss_bytes_streamed" in timings.as_dict()

    def test_kss_bytes_streamed_merges(self):
        a = PhaseTimings(kss_bytes_streamed=100)
        a.merge(PhaseTimings(kss_bytes_streamed=50))
        assert a.kss_bytes_streamed == 150

    def test_session_accepts_backend_instance(self, sorted_db, sketch_db,
                                              sample):
        from repro.megis.index import MegisIndex

        index = MegisIndex(sorted_db, sketch_db)
        paced = PacedStepTwoBackend("numpy", mb_per_s=1e9)
        session = AnalysisSession(
            index, MegisConfig(abundance_method="statistical"), backend=paced
        )
        assert session.config.backend == "paced"
        assert session.backend_name == "paced"
        reference = AnalysisSession(
            index, MegisConfig(abundance_method="statistical",
                               backend="numpy")
        )
        a = session.analyze(sample.reads)
        b = reference.analyze(sample.reads)
        assert a.candidates == b.candidates
        assert a.profile.fractions == b.profile.fractions
