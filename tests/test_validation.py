"""The reproduction contract: every headline target must be in band."""

import pytest

from repro.perf.validation import format_validation_report, validate


@pytest.fixture(scope="module")
def rows():
    return validate()


class TestValidation:
    def test_all_targets_in_band(self, rows):
        out_of_band = [r.name for r in rows if not r.in_band]
        assert not out_of_band, f"targets out of band: {out_of_band}"

    def test_report_renders(self, rows):
        report = format_validation_report(rows)
        assert "targets in band" in report
        assert f"{len(rows)}/{len(rows)}" in report

    def test_target_count(self, rows):
        assert len(rows) >= 15  # every headline quantity covered
