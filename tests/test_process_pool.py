"""Process-pool serving tier: fork-after-mmap COW, shard ownership, respawn.

Three layers under test (each guarded by the suite-wide pytest-timeout
ceiling, since a hung pipe or a lost respawn would otherwise deadlock):

- :class:`~repro.megis.executors.ProcessExecutor` — fork semantics,
  pinned submission, crash detection via the process sentinel, respawn
  with one retry, and :class:`WorkerCrashed` after the retry dies too;
- :class:`~repro.megis.procpool.ProcessAnalysisRunner` through
  :class:`~repro.megis.session.AnalysisSession` — bit-identity against
  the serial path, and the copy-on-write contract: workers forked after
  ``MegisIndex.open(mmap=True)`` + ``warm()`` must see the parent's
  column-build counters unchanged (a duplicated index would rebuild);
- :class:`~repro.megis.service.AnalysisService` over a process-backed
  session — a worker killed mid-batch is respawned, queued samples all
  complete, and only the poisoned request fails with a structured error.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.megis.executors import (
    ProcessExecutor,
    WorkerCrashed,
    get_executor,
    worker_state,
)
from repro.megis.index import MegisIndex
from repro.megis.service import AnalysisService
from repro.megis.session import AnalysisSession, MegisConfig


# -- module-level task functions (cross the worker pipe by reference) ---------

def _square(x):
    return x * x


def _pid():
    return os.getpid()


def _state_echo():
    return worker_state()


def _die_unless_flagged(flag_path):
    """First run: leave a flag and die.  Retry run: survive."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os._exit(43)
    return "survived"


def _die_always():
    os._exit(9)


def _raise_value_error():
    raise ValueError("relayed")


def _return_unpicklable():
    return lambda: None


class _HookedState:
    """Fork state whose after_fork hook leaves a visible trace."""

    def __init__(self):
        self.forked_pid = None

    def after_fork(self):
        self.forked_pid = os.getpid()


def _state_fork_pid():
    return worker_state().forked_pid


@pytest.fixture
def pool():
    executor = ProcessExecutor(2)
    yield executor
    executor.shutdown(wait=False)


class TestProcessExecutor:
    def test_submit_and_map_ordered(self, pool):
        assert pool.submit(_square, 7).result(timeout=60) == 49
        assert pool.map_ordered(_square, range(5)) == [0, 1, 4, 9, 16]
        assert pool.workers == 2
        assert pool.name == "processes:2"

    def test_get_executor_resolves_processes(self):
        executor = get_executor("processes:2")
        try:
            assert isinstance(executor, ProcessExecutor)
            assert executor.workers == 2
        finally:
            executor.shutdown(wait=False)

    def test_tasks_run_out_of_process(self, pool):
        pids = {pool.submit(_pid).result(timeout=60) for _ in range(8)}
        assert os.getpid() not in pids

    def test_submit_to_pins_worker(self, pool):
        pid_a = pool.submit_to(0, _pid).result(timeout=60)
        pid_b = pool.submit_to(1, _pid).result(timeout=60)
        assert pid_a != pid_b
        assert pool.submit_to(0, _pid).result(timeout=60) == pid_a
        with pytest.raises(ValueError):
            pool.submit_to(2, _pid)

    def test_state_is_fork_inherited_and_hook_runs(self):
        state = _HookedState()
        executor = ProcessExecutor(1, state=state)
        try:
            echoed = executor.submit(_state_echo).result(timeout=60)
            assert isinstance(echoed, _HookedState)
            # The child's after_fork ran (its pid, not the parent's);
            # the parent's copy stays untouched — COW, not shared writes.
            assert executor.submit(_state_fork_pid).result(timeout=60) \
                != os.getpid()
            assert state.forked_pid is None
        finally:
            executor.shutdown(wait=False)

    def test_crash_respawns_and_retries_once(self, pool, tmp_path):
        flag = tmp_path / "died-once"
        future = pool.submit(_die_unless_flagged, str(flag))
        assert future.result(timeout=60) == "survived"
        assert pool.respawns == 1
        assert flag.exists()

    def test_persistent_crash_fails_structured(self, pool):
        with pytest.raises(WorkerCrashed) as crashed:
            pool.submit(_die_always).result(timeout=60)
        assert crashed.value.attempts == 2  # first run + one retry
        assert crashed.value.exitcode == 9
        assert "_die_always" in str(crashed.value)
        # The pool keeps serving after giving up on the poisoned task.
        assert pool.submit(_square, 3).result(timeout=60) == 9
        assert pool.respawns >= 2

    def test_sigkill_idle_worker_respawns(self, pool):
        victim = pool.submit_to(0, _pid).result(timeout=60)
        os.kill(victim, signal.SIGKILL)
        deadline = time.time() + 30
        while time.time() < deadline:  # let the OS reap the victim
            try:
                os.kill(victim, 0)
            except OSError:
                break
            time.sleep(0.01)
        replacement = pool.submit_to(0, _pid).result(timeout=60)
        assert replacement != victim
        assert pool.respawns >= 1

    def test_exceptions_cross_the_pipe(self, pool):
        with pytest.raises(ValueError, match="relayed"):
            pool.submit(_raise_value_error).result(timeout=60)

    def test_unpicklable_payload_degrades_to_error(self, pool):
        with pytest.raises(RuntimeError, match="did not survive the pipe"):
            pool.submit(_return_unpicklable).result(timeout=60)

    def test_shutdown_wait_drains_queued_tasks(self):
        executor = ProcessExecutor(1)
        futures = [executor.submit(_square, i) for i in range(6)]
        executor.shutdown(wait=True)
        assert [f.result(timeout=0) for f in futures] == [
            i * i for i in range(6)
        ]
        with pytest.raises(RuntimeError):
            executor.submit(_square, 1)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ProcessExecutor(0)

    def test_state_frozen_after_fork(self, pool):
        pool.start()
        with pytest.raises(RuntimeError, match="frozen"):
            pool.bind_state(object())


# -- session / runner ---------------------------------------------------------

def _signature(result):
    return (
        result.intersecting_kmers,
        result.sketch_hits,
        sorted(result.candidates),
        sorted(result.profile.fractions.items()),
    )


@pytest.fixture(scope="module")
def process_world(sorted_db, sketch_db, references):
    return MegisIndex(sorted_db, sketch_db, references)


class TestProcessBackedSession:
    @pytest.mark.parametrize("abundance", ["statistical", "mapping"])
    def test_bit_identical_to_serial(self, process_world, sample, abundance):
        config = MegisConfig(abundance_method=abundance, backend="numpy")
        serial = AnalysisSession(process_world, config)
        expected_single = _signature(serial.analyze(sample.reads))
        chunks = [sample.reads[i * 60:(i + 1) * 60] for i in range(4)]
        expected_batch = [
            _signature(r) for r in serial.analyze_batch(chunks)
        ]
        with AnalysisSession(
            process_world, config, executor="processes:2"
        ) as session:
            assert _signature(session.analyze(sample.reads)) == expected_single
            assert [
                _signature(r) for r in session.analyze_batch(chunks)
            ] == expected_batch

    def test_spec_variants_resolve(self, process_world):
        bare = AnalysisSession(
            process_world, MegisConfig(executor="processes")
        )
        assert bare._process_workers == (os.cpu_count() or 1)
        sized = AnalysisSession(
            process_world, MegisConfig(executor="processes:3")
        )
        assert sized._process_workers == 3
        assert sized._executor_spec is None  # engines stay serial in-worker

    def test_rejects_executor_instance_and_ssd(self, process_world):
        from repro.ssd.config import ssd_c
        from repro.ssd.device import SSD

        executor = ProcessExecutor(1)
        try:
            with pytest.raises(ValueError, match="processes"):
                AnalysisSession(process_world, executor=executor)
        finally:
            executor.shutdown(wait=False)
        with pytest.raises(ValueError, match="process-backed"):
            AnalysisSession(
                process_world, MegisConfig(executor="processes:2"),
                ssd=SSD(ssd_c()),
            )

    def test_mmap_fork_shares_columns_cow(self, process_world, tmp_path):
        """The ISSUE's COW assertion: fork after ``open(mmap=True)`` +
        ``warm()`` duplicates no index state — the counters a worker
        reads *inside the forked process* equal the parent's snapshot
        (a per-worker copy would have to rebuild its columns)."""
        path = tmp_path / "world.megis"
        process_world.save(path)
        index = MegisIndex.open(path, mmap=True)
        assert index.mapped
        with AnalysisSession(
            index, MegisConfig(abundance_method="statistical",
                               backend="numpy", executor="processes:2"),
        ) as session:
            session.warm()  # the fork point
            parent_builds = index.database.column_builds
            parent_owner_builds = index.database.owner_column_builds
            for probe in session._runner.probe_workers():
                assert probe["pid"] != os.getpid()
                assert probe["column_builds"] == parent_builds
                assert probe["owner_column_builds"] == parent_owner_builds
            # The pool forked once, at warm(): no crash respawns.
            assert session._runner.respawns == 0

    def test_close_reaps_workers_and_session_can_refork(self, process_world,
                                                        sample):
        session = AnalysisSession(
            process_world,
            MegisConfig(abundance_method="statistical", backend="numpy",
                        executor="processes:2"),
        )
        session.warm()
        runner = session._runner
        pids = [probe["pid"] for probe in runner.probe_workers()]
        session.close()
        deadline = time.time() + 30
        while time.time() < deadline and any(
            _alive(pid) for pid in pids
        ):
            time.sleep(0.01)
        assert not any(_alive(pid) for pid in pids)
        # Closing is not terminal: the next analysis re-warms and re-forks.
        result = session.analyze(sample.reads[:40])
        assert result.candidates is not None
        assert session._runner is not runner
        session.close()

    def test_shard_groups_cover_ascending_ranges(self, process_world):
        with AnalysisSession(
            process_world,
            MegisConfig(backend="numpy", executor="processes:2", n_ssds=3),
        ) as session:
            session.warm()
            runner = session._runner
            assert len(runner.shards) == 3  # max(n_ssds, workers)
            flat = [i for group in runner.groups for i in group]
            assert flat == list(range(len(runner.shards)))
            los = [runner.shards[i].lo for i in flat]
            assert los == sorted(los)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


# -- service-level crash semantics -------------------------------------------

def _install_poison(monkeypatch):
    """Replace the Step-1 task with one that kills the worker on a
    poison sample.  Patched *before* the session forks, so workers (and
    every respawn, which re-forks the patched parent) inherit it; the
    pickle-by-reference lookup resolves to the patched function on both
    sides of the pipe."""
    from repro.megis import procpool

    real = procpool._task_step1

    def poisoned_step1(reads):
        if reads and reads[0].sequence == "POISON":
            os._exit(51)
        return real(reads)

    poisoned_step1.__module__ = procpool._task_step1.__module__
    poisoned_step1.__qualname__ = procpool._task_step1.__qualname__
    poisoned_step1.__name__ = procpool._task_step1.__name__
    monkeypatch.setattr(procpool, "_task_step1", poisoned_step1)


class TestServiceCrashSemantics:
    def test_killed_worker_respawns_without_losing_queue(
        self, process_world, sample, monkeypatch
    ):
        """A worker killed mid-batch fails only the poisoned request —
        with a structured error after one respawn-retry — while every
        queued sample completes on the respawned worker."""
        from repro.sequences.reads import Read

        _install_poison(monkeypatch)
        config = MegisConfig(abundance_method="statistical", backend="numpy",
                             executor="processes:2")
        serial = AnalysisSession(process_world, MegisConfig(
            abundance_method="statistical", backend="numpy"))
        good = [sample.reads[i * 40:(i + 1) * 40] for i in range(3)]
        expected = [_signature(serial.analyze(reads)) for reads in good]
        poison = [Read(read_id=0, sequence="POISON", true_taxid=0)]

        with AnalysisSession(process_world, config) as session:
            # One sample per batch: the poison kill must not take
            # innocent batch-mates down with it in this test.
            with AnalysisService(session, workers=1, max_batch=1) as service:
                assert service.process_backed
                futures = [service.submit(good[0], tag="g0"),
                           service.submit(poison, tag="poison"),
                           service.submit(good[1], tag="g1"),
                           service.submit(good[2], tag="g2")]
                service.close_submissions()  # end the completion stream
                completed = {
                    entry.tag: entry for entry in service.results()
                }
            assert set(completed) == {"g0", "poison", "g1", "g2"}
            with pytest.raises(WorkerCrashed) as crashed:
                completed["poison"].future.result()
            assert crashed.value.attempts == 2  # respawn happened, retried
            assert crashed.value.exitcode == 51
            for tag, want in zip(("g0", "g1", "g2"), expected):
                assert _signature(
                    completed[tag].future.result()) == want
            # Both deaths (initial + retry) respawned a worker, and the
            # respawned worker served the queued samples.
            assert session._runner.respawns >= 2
            assert all(future.done() for future in futures)
