"""Unit and property tests for the 2-bit nucleotide encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.sequences.encoding import (
    ALPHABET,
    EncodingError,
    canonical_kmer,
    decode_kmer,
    decode_sequence,
    encode_kmer,
    encode_sequence,
    kmer_prefix,
    reverse_complement,
    reverse_complement_code,
)

dna = st.text(alphabet=ALPHABET, min_size=0, max_size=64)
dna1 = st.text(alphabet=ALPHABET, min_size=1, max_size=31)


class TestSequenceEncoding:
    def test_codes_are_lexicographic(self):
        assert encode_sequence("ACGT").tolist() == [0, 1, 2, 3]

    def test_roundtrip_simple(self):
        assert decode_sequence(encode_sequence("GATTACA")) == "GATTACA"

    def test_lowercase_accepted(self):
        assert encode_sequence("acgt").tolist() == [0, 1, 2, 3]

    def test_invalid_character_raises(self):
        with pytest.raises(EncodingError):
            encode_sequence("ACGN")

    def test_empty_sequence(self):
        assert decode_sequence(encode_sequence("")) == ""

    @given(dna)
    def test_roundtrip_property(self, seq):
        assert decode_sequence(encode_sequence(seq)) == seq


class TestKmerPacking:
    def test_known_values(self):
        assert encode_kmer("A") == 0
        assert encode_kmer("T") == 3
        assert encode_kmer("AC") == 1
        assert encode_kmer("CA") == 4

    def test_roundtrip(self):
        assert decode_kmer(encode_kmer("GATTACA"), 7) == "GATTACA"

    def test_out_of_range_decode(self):
        with pytest.raises(ValueError):
            decode_kmer(1 << 10, 4)

    def test_invalid_char(self):
        with pytest.raises(EncodingError):
            encode_kmer("AXG")

    @given(dna1)
    def test_roundtrip_property(self, kmer):
        assert decode_kmer(encode_kmer(kmer), len(kmer)) == kmer

    @given(st.lists(dna1.filter(lambda s: len(s) == 10), min_size=2, max_size=8))
    def test_integer_order_equals_lexicographic(self, kmers):
        packed = [encode_kmer(k) for k in kmers]
        assert sorted(kmers) == [decode_kmer(v, 10) for v in sorted(packed)]


class TestReverseComplement:
    def test_known(self):
        assert reverse_complement("ACGT") == "ACGT"
        assert reverse_complement("AAAA") == "TTTT"
        assert reverse_complement("GAT") == "ATC"

    @given(dna)
    def test_involution(self, seq):
        assert reverse_complement(reverse_complement(seq)) == seq

    @given(dna1)
    def test_code_matches_string(self, kmer):
        k = len(kmer)
        expected = encode_kmer(reverse_complement(kmer))
        assert reverse_complement_code(encode_kmer(kmer), k) == expected


class TestCanonicalKmer:
    @given(dna1)
    def test_strand_invariance(self, kmer):
        k = len(kmer)
        forward = encode_kmer(kmer)
        backward = encode_kmer(reverse_complement(kmer))
        assert canonical_kmer(forward, k) == canonical_kmer(backward, k)

    @given(dna1)
    def test_is_minimum(self, kmer):
        k = len(kmer)
        value = encode_kmer(kmer)
        assert canonical_kmer(value, k) <= value


class TestKmerPrefix:
    def test_known(self):
        assert kmer_prefix(encode_kmer("ACGT"), 4, 2) == encode_kmer("AC")

    def test_full_prefix_is_identity(self):
        value = encode_kmer("GATTACA")
        assert kmer_prefix(value, 7, 7) == value

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            kmer_prefix(0, 4, 5)
        with pytest.raises(ValueError):
            kmer_prefix(0, 4, 0)

    @given(dna1, st.integers(min_value=1, max_value=31))
    def test_prefix_matches_string_prefix(self, kmer, plen):
        k = len(kmer)
        plen = min(plen, k)
        expected = encode_kmer(kmer[:plen])
        assert kmer_prefix(encode_kmer(kmer), k, plen) == expected
