"""Tests for quality-aware read preprocessing."""

import pytest
from hypothesis import given, strategies as st

from repro.sequences.quality import (
    QualityFilter,
    char_to_phred,
    decode_quality,
    encode_quality,
    error_probability,
    phred_to_char,
    trim_tail,
)


class TestPhred:
    def test_known_values(self):
        assert phred_to_char(0) == "!"
        assert phred_to_char(40) == "I"
        assert char_to_phred("I") == 40

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            phred_to_char(-1)
        with pytest.raises(ValueError):
            phred_to_char(94)
        with pytest.raises(ValueError):
            char_to_phred(" ")

    def test_error_probability(self):
        assert error_probability(10) == pytest.approx(0.1)
        assert error_probability(30) == pytest.approx(0.001)
        with pytest.raises(ValueError):
            error_probability(-1)

    @given(st.lists(st.integers(0, 93), max_size=50))
    def test_roundtrip(self, scores):
        assert decode_quality(encode_quality(scores)) == scores


class TestTrimTail:
    def test_no_trim_on_high_quality(self):
        seq, qual = trim_tail("ACGT", "IIII", threshold=20)
        assert (seq, qual) == ("ACGT", "IIII")

    def test_trims_low_quality_tail(self):
        quality = encode_quality([40, 40, 40, 2, 2, 2])
        seq, qual = trim_tail("ACGTAC", quality, threshold=20)
        assert seq == "ACG"
        assert len(qual) == 3

    def test_keeps_good_bases_after_one_bad(self):
        # One mid-read dip should not truncate a long good tail.
        quality = encode_quality([40, 40, 2, 40, 40, 40, 40, 40])
        seq, _ = trim_tail("ACGTACGT", quality, threshold=20)
        assert len(seq) >= 7

    def test_all_bad_trims_everything(self):
        quality = encode_quality([2, 2, 2, 2])
        seq, qual = trim_tail("ACGT", quality, threshold=20)
        assert seq == ""

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            trim_tail("ACGT", "II")

    @given(st.text(alphabet="ACGT", min_size=0, max_size=40),
           st.lists(st.integers(0, 93), max_size=40))
    def test_trim_is_prefix(self, seq, scores):
        scores = scores[: len(seq)] + [30] * (len(seq) - len(scores))
        trimmed, qual = trim_tail(seq, encode_quality(scores))
        assert seq.startswith(trimmed)
        assert len(trimmed) == len(qual)


class TestQualityFilter:
    def test_keeps_good_reads(self):
        records = [("r0", "ACGT" * 20, "I" * 80)]
        kept = QualityFilter().apply(records)
        assert len(kept) == 1
        assert kept[0].sequence == "ACGT" * 20

    def test_drops_short_reads(self):
        records = [("r0", "ACGT", "IIII")]
        assert QualityFilter(min_length=30).apply(records) == []

    def test_drops_low_mean_quality(self):
        records = [("r0", "ACGT" * 10, encode_quality([12] * 40))]
        assert QualityFilter(trim_threshold=0, min_mean_quality=15).apply(records) == []

    def test_trimming_can_rescue_reads(self):
        # Good head, terrible tail: trimming keeps the head.
        quality = encode_quality([40] * 40 + [2] * 40)
        records = [("r0", "ACGT" * 20, quality)]
        kept = QualityFilter(min_length=30).apply(records)
        assert len(kept) == 1
        assert len(kept[0].sequence) == 40

    def test_read_ids_sequential(self):
        records = [("a", "ACGT" * 10, "I" * 40), ("b", "TTTT" * 10, "I" * 40)]
        kept = QualityFilter(min_length=10).apply(records)
        assert [r.read_id for r in kept] == [0, 1]

    def test_survival_rate(self):
        records = [
            ("good", "ACGT" * 10, "I" * 40),
            ("bad", "ACGT", "IIII"),
        ]
        assert QualityFilter(min_length=30).survival_rate(records) == 0.5
        assert QualityFilter().survival_rate([]) == 0.0
