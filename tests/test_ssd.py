"""Tests for the SSD simulator: config, NAND, channels, FTL, DRAM, device."""

import pytest

from repro.ssd.channel import AccessPattern, ChannelSimulator, ReadRequest
from repro.ssd.config import NandGeometry, ssd_c, ssd_p
from repro.ssd.device import SSD
from repro.ssd.dram import DramCapacityError, InternalDram
from repro.ssd.ftl import PageLevelFTL
from repro.ssd.nand import NandError, NandFlash, PageAddress


def tiny_geometry(**overrides):
    params = dict(
        channels=2,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=4,
        pages_per_block=8,
        page_bytes=4096,
    )
    params.update(overrides)
    return NandGeometry(**params)


class TestConfig:
    def test_table1_internal_bandwidth(self):
        # 8 x 1.2 GB/s and 16 x 1.2 GB/s (paper §2.3's 19.2 GB/s example).
        assert ssd_c().internal_read_bw == pytest.approx(9.6e9)
        assert ssd_p().internal_read_bw == pytest.approx(19.2e9)

    def test_internal_exceeds_external(self):
        for config in (ssd_c(), ssd_p()):
            assert config.internal_read_bw > config.seq_read_bw

    def test_capacity_near_4tb(self):
        for config in (ssd_c(), ssd_p()):
            assert 3.5e12 < config.capacity_bytes < 6e12

    def test_with_channels_scales_bandwidth(self):
        base = ssd_c()
        doubled = base.with_channels(16)
        assert doubled.internal_read_bw == pytest.approx(2 * base.internal_read_bw)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            tiny_geometry(channels=0)

    def test_geometry_counts(self):
        g = tiny_geometry()
        assert g.dies == 4
        assert g.planes == 8
        assert g.blocks == 32
        assert g.pages == 256
        assert g.capacity_bytes == 256 * 4096
        assert g.multiplane_read_bytes == 2 * 4096


class TestNandFlash:
    def test_program_then_read(self):
        flash = NandFlash(tiny_geometry())
        addr = PageAddress(0, 0, 0, 0, 0)
        flash.erase(0, 0, 0, 0)
        flash.program(addr, data="payload")
        data, latency = flash.read(addr)
        assert data == "payload"
        assert latency == 52.5

    def test_out_of_order_program_rejected(self):
        flash = NandFlash(tiny_geometry())
        flash.erase(0, 0, 0, 0)
        with pytest.raises(NandError):
            flash.program(PageAddress(0, 0, 0, 0, 3))

    def test_reprogram_requires_erase(self):
        flash = NandFlash(tiny_geometry())
        flash.erase(0, 0, 0, 0)
        for page in range(8):
            flash.program(PageAddress(0, 0, 0, 0, page))
        with pytest.raises(NandError):
            flash.program(PageAddress(0, 0, 0, 0, 0))
        flash.erase(0, 0, 0, 0)
        flash.program(PageAddress(0, 0, 0, 0, 0))  # legal again

    def test_erase_clears_data(self):
        flash = NandFlash(tiny_geometry())
        flash.erase(0, 0, 0, 0)
        flash.program(PageAddress(0, 0, 0, 0, 0), data="x")
        flash.erase(0, 0, 0, 0)
        data, _ = flash.read(PageAddress(0, 0, 0, 0, 0))
        assert data is None

    def test_erase_count_tracked(self):
        flash = NandFlash(tiny_geometry())
        flash.erase(1, 1, 1, 1)
        flash.erase(1, 1, 1, 1)
        assert flash.erase_count(1, 1, 1, 1) == 2

    def test_address_validation(self):
        flash = NandFlash(tiny_geometry())
        with pytest.raises(NandError):
            flash.read(PageAddress(9, 0, 0, 0, 0))

    def test_multiplane_read(self):
        flash = NandFlash(tiny_geometry())
        for plane in range(2):
            flash.erase(0, 0, plane, 1)
            flash.program(PageAddress(0, 0, plane, 1, 0), data=f"p{plane}")
        data, latency = flash.multiplane_read(0, 0, 1, 0)
        assert data == ["p0", "p1"]
        assert latency == 52.5

    def test_linear_index_bijective(self):
        geometry = tiny_geometry()
        flash = NandFlash(geometry)
        seen = set()
        for channel in range(geometry.channels):
            for die in range(geometry.dies_per_channel):
                for plane in range(geometry.planes_per_die):
                    for block in range(geometry.blocks_per_plane):
                        for page in range(geometry.pages_per_block):
                            seen.add(
                                flash.linear_page_index(
                                    PageAddress(channel, die, plane, block, page)
                                )
                            )
        assert seen == set(range(geometry.pages))


class TestChannelSimulator:
    def test_sequential_saturates_channels(self):
        config = ssd_c()
        sim = ChannelSimulator(config.geometry, config.t_read_us, config.channel_bw)
        bw = sim.measure_bandwidth(AccessPattern.SEQUENTIAL)
        assert bw > 0.8 * config.internal_read_bw

    def test_random_collapses_throughput(self):
        config = ssd_c()
        sim = ChannelSimulator(config.geometry, config.t_read_us, config.channel_bw)
        seq = sim.measure_bandwidth(AccessPattern.SEQUENTIAL)
        rnd = sim.measure_bandwidth(AccessPattern.RANDOM)
        assert rnd < 0.5 * seq

    def test_empty_request_list(self):
        sim = ChannelSimulator(tiny_geometry())
        result = sim.simulate([])
        assert result.total_time_s == 0.0
        assert result.bandwidth == 0.0

    def test_single_read_latency(self):
        g = tiny_geometry()
        sim = ChannelSimulator(g, t_read_us=50.0, channel_bw=1e9)
        result = sim.simulate([ReadRequest(0, 0, multiplane=False)])
        expected = 50e-6 + g.page_bytes / 1e9
        assert result.total_time_s == pytest.approx(expected)

    def test_two_dies_overlap_sensing(self):
        g = tiny_geometry()
        sim = ChannelSimulator(g, t_read_us=50.0, channel_bw=1e9)
        same_die = sim.simulate([ReadRequest(0, 0, False)] * 2).total_time_s
        two_dies = sim.simulate(
            [ReadRequest(0, 0, False), ReadRequest(0, 1, False)]
        ).total_time_s
        assert two_dies < same_die


class TestPageLevelFTL:
    def test_write_read_roundtrip(self):
        ftl = PageLevelFTL(NandFlash(tiny_geometry()))
        ftl.write(5, data="hello")
        data, _ = ftl.read(5)
        assert data == "hello"

    def test_unmapped_read_raises(self):
        ftl = PageLevelFTL(NandFlash(tiny_geometry()))
        with pytest.raises(KeyError):
            ftl.read(0)

    def test_overwrite_remaps(self):
        ftl = PageLevelFTL(NandFlash(tiny_geometry()))
        first = ftl.write(1, data="old")
        second = ftl.write(1, data="new")
        assert first != second
        assert ftl.read(1)[0] == "new"

    def test_sequential_writes_stripe_channels(self):
        geometry = tiny_geometry()
        ftl = PageLevelFTL(NandFlash(geometry))
        addrs = [ftl.write(lpa) for lpa in range(geometry.channels)]
        assert {a.channel for a in addrs} == set(range(geometry.channels))

    def test_metadata_is_0_1_percent(self):
        config = ssd_c()
        ftl = PageLevelFTL(NandFlash(config.geometry))
        ratio = ftl.metadata_bytes() / config.capacity_bytes
        assert ratio == pytest.approx(0.001, rel=0.05)

    def test_negative_lpa_rejected(self):
        ftl = PageLevelFTL(NandFlash(tiny_geometry()))
        with pytest.raises(ValueError):
            ftl.write(-1)

    def test_device_full(self):
        geometry = tiny_geometry(blocks_per_plane=1, pages_per_block=2)
        ftl = PageLevelFTL(NandFlash(geometry))
        for lpa in range(geometry.pages):
            ftl.write(lpa)
        with pytest.raises(RuntimeError):
            ftl.write(geometry.pages)


class TestInternalDram:
    def test_allocate_and_free(self):
        dram = InternalDram(capacity_bytes=100, bandwidth=1e9)
        dram.allocate("a", 60)
        assert dram.used_bytes == 60
        assert dram.free_bytes == 40
        dram.free("a")
        assert dram.used_bytes == 0

    def test_over_capacity_raises(self):
        dram = InternalDram(capacity_bytes=100, bandwidth=1e9)
        dram.allocate("a", 80)
        with pytest.raises(DramCapacityError):
            dram.allocate("b", 30)

    def test_duplicate_name_raises(self):
        dram = InternalDram(capacity_bytes=100, bandwidth=1e9)
        dram.allocate("a", 10)
        with pytest.raises(ValueError):
            dram.allocate("a", 10)

    def test_free_unknown_raises(self):
        dram = InternalDram(capacity_bytes=100, bandwidth=1e9)
        with pytest.raises(KeyError):
            dram.free("missing")

    def test_resize(self):
        dram = InternalDram(capacity_bytes=100, bandwidth=1e9)
        dram.allocate("a", 50)
        dram.resize("a", 90)
        assert dram.allocation("a") == 90
        with pytest.raises(DramCapacityError):
            dram.resize("a", 200)

    def test_bandwidth_budget(self):
        dram = InternalDram(capacity_bytes=100, bandwidth=4e9)
        assert dram.supports_bandwidth(2.4e9)
        assert not dram.supports_bandwidth(20e9)


class TestSSDDevice:
    def test_sequential_read_time_interface_limited(self):
        device = SSD(ssd_c())
        seconds = device.host_sequential_read_time(560e6)
        assert seconds == pytest.approx(1.0)

    def test_internal_faster_than_external(self):
        device = SSD(ssd_c())
        nbytes = 10e9
        assert device.internal_sequential_read_time(
            nbytes
        ) < device.host_sequential_read_time(nbytes)

    def test_random_slower_than_sequential_on_ssd_p(self):
        # On PCIe the flash-side random penalty is visible; on SATA both
        # patterns are interface-limited, so random is merely no faster.
        device_p = SSD(ssd_p())
        assert device_p.host_random_read_time(1e9) > device_p.host_sequential_read_time(1e9)
        device_c = SSD(ssd_c())
        assert device_c.host_random_read_time(1e9) >= device_c.host_sequential_read_time(1e9)

    def test_counters_accumulate(self):
        device = SSD(ssd_p())
        device.host_sequential_read_time(100)
        device.host_sequential_write_time(50)
        device.internal_sequential_read_time(200)
        assert device.counters.host_read_bytes == 100
        assert device.counters.host_write_bytes == 50
        assert device.counters.internal_read_bytes == 200
        assert device.counters.external_bytes == 150

    def test_negative_bytes_rejected(self):
        device = SSD(ssd_c())
        with pytest.raises(ValueError):
            device.host_sequential_read_time(-1)
