"""The wire format in isolation: every constructor round-trips, every
malformed input is a message (never an exception), schema versioning is
enforced on ingest.

The serving surfaces (serve/gateway/cluster) all import
:mod:`repro.megis.wire`, so this suite is the contract they share —
end-to-end coverage lives with each surface, byte-level fidelity lives
here.
"""

import json

import numpy as np
import pytest

from repro.backends.retrieval import LevelHits, RetrievalResult
from repro.megis import wire


def parse(line, line_no=1, **kwargs):
    return wire.parse_request_line(line, line_no, **kwargs)


def decode(record):
    """encode() -> one framed line -> the JSON object back."""
    raw = wire.encode(record)
    assert raw.endswith(b"\n") and raw.count(b"\n") == 1
    return json.loads(raw[:-1].decode("utf-8"))


class TestParseRequestLine:
    def test_valid_request_bytes_and_str(self):
        payload = json.dumps({"schema": 1, "id": "a", "reads": ["ACGT"]})
        for line in (payload, payload.encode()):
            request_id, reads, error = parse(line)
            assert error is None
            assert (request_id, reads) == ("a", ["ACGT"])

    def test_missing_schema_is_rejected(self):
        request_id, reads, error = parse(
            json.dumps({"id": "a", "reads": ["ACGT"]}))
        assert reads is None and request_id == "a"
        assert "missing 'schema'" in error and "schema 1" in error

    def test_unknown_schema_is_rejected(self):
        for bad in (0, 2, "1", None):
            request_id, reads, error = parse(
                json.dumps({"schema": bad, "id": "x", "reads": []}))
            assert reads is None, bad
            assert f"unsupported schema {bad!r}" in error

    def test_schema_checked_before_reads(self):
        """A frame wrong on both counts reports the version problem —
        the client's parser generation is the more fundamental error."""
        _, reads, error = parse(json.dumps({"id": "x"}))
        assert reads is None and "missing 'schema'" in error

    def test_missing_reads_after_valid_schema(self):
        request_id, reads, error = parse(json.dumps({"schema": 1, "id": "x"}))
        assert reads is None and request_id == "x"
        assert "'reads'" in error

    def test_non_object_payloads(self):
        for payload in ("[1, 2]", '"just a string"', "42", "null"):
            _, reads, error = parse(payload)
            assert reads is None
            assert "expected an object" in error

    def test_bad_json(self):
        request_id, reads, error = parse("{not json", line_no=9)
        assert (request_id, reads) == (9, None)
        assert "bad JSON" in error

    def test_non_utf8_bytes(self):
        request_id, reads, error = parse(b'{"id": "\xff\xfe"}', line_no=4)
        assert (request_id, reads) == (4, None)
        assert "not valid UTF-8" in error

    def test_oversized_line_rejected_before_parsing(self):
        line = json.dumps({"schema": 1, "id": "big", "reads": ["A" * 512]})
        request_id, reads, error = parse(line, line_no=2, max_bytes=64)
        assert (request_id, reads) == (2, None)
        assert "line too long" in error and "--max-line-bytes 64" in error
        _, reads, error = parse(line, max_bytes=len(line.encode()))
        assert error is None and reads == ["A" * 512]

    def test_duplicate_id_rejected_second_time(self):
        seen = set()
        line = json.dumps({"schema": 1, "id": 7, "reads": ["ACGT"]})
        _, reads, error = parse(line, seen_ids=seen)
        assert error is None and reads == ["ACGT"]
        request_id, reads, error = parse(line, line_no=2, seen_ids=seen)
        assert reads is None and request_id == 7
        assert "duplicate id 7" in error

    def test_rejected_requests_do_not_burn_their_id(self):
        """A rejection must not poison the id for a corrected resend."""
        seen = set()
        _, _, error = parse(json.dumps({"schema": 1, "id": "r"}),
                            seen_ids=seen)
        assert error is not None and seen == set()
        _, reads, error = parse(
            json.dumps({"schema": 1, "id": "r", "reads": []}), seen_ids=seen)
        assert error is None and seen == {"r"}

    def test_missing_id_defaults_to_line_number(self):
        request_id, reads, error = parse(
            json.dumps({"schema": 1, "reads": ["ACGT"]}), line_no=11)
        assert error is None and request_id == 11

    def test_non_scalar_id(self):
        request_id, reads, error = parse(
            json.dumps({"schema": 1, "id": [1], "reads": []}), line_no=3)
        assert (request_id, reads) == (3, None)
        assert "'id' must be a JSON scalar" in error

    def test_reads_must_be_sequence_strings(self):
        for bad in ([1, 2], "ACGT", {"a": 1}, [["ACGT"]]):
            _, reads, error = parse(
                json.dumps({"schema": 1, "id": "x", "reads": bad}))
            assert reads is None, bad
            assert "'reads' must be a list of sequence strings" in error


class TestCheckSchema:
    def test_exact_version_passes(self):
        assert wire.check_schema({"schema": wire.SCHEMA}) is None

    def test_missing_and_wrong(self):
        assert "missing 'schema'" in wire.check_schema({})
        assert "unsupported schema 99" in wire.check_schema({"schema": 99})
        # A stringified version is a different client generation, not a
        # sloppy match.
        assert "unsupported schema '1'" in wire.check_schema({"schema": "1"})


class _FakeProfile:
    fractions = {562: 0.75, 1280: 0.25}


class _FakeTimings:
    samples_batched = 2


class _FakeResult:
    candidates = [1280, 562]
    profile = _FakeProfile()
    timings = _FakeTimings()


class _FakeMetrics:
    queue_wait_ms = 1.23456
    latency_ms = 7.65432


class _FakeClientStats:
    submitted = 5
    completed = 4
    failed = 1
    malformed = 2
    rate_limited = 3
    rejected = 0


class TestRecordConstructors:
    def test_result_record_roundtrip(self):
        record = decode(wire.result_record("s1", 100, _FakeResult(),
                                           _FakeMetrics()))
        assert record["schema"] == wire.SCHEMA
        assert record["id"] == "s1"
        assert record["n_reads"] == 100
        assert record["candidates"] == [562, 1280]
        assert record["profile"] == {"562": 0.75, "1280": 0.25}
        assert record["samples_batched"] == 2
        assert record["queue_wait_ms"] == 1.235
        assert record["latency_ms"] == 7.654

    def test_error_record_roundtrip(self):
        record = decode(wire.error_record("x", "boom", 3))
        assert record == {"schema": wire.SCHEMA, "id": "x", "error": "boom",
                          "line": 3}
        anonymous = decode(wire.error_record(None, "bad JSON", None))
        assert anonymous["id"] is None and anonymous["line"] is None

    def test_drain_record_roundtrip(self):
        record = decode(wire.drain_record(4, _FakeClientStats()))
        assert record["event"] == "drain"
        assert record["client"] == 4
        assert record["submitted"] == 5
        assert record["completed"] == 4
        assert record["rate_limited"] == 3

    def test_every_record_is_stamped_with_the_schema(self):
        retrieved = RetrievalResult(queries=[], levels={})
        records = [
            wire.result_record(1, 0, _FakeResult(), _FakeMetrics()),
            wire.error_record(1, "e", 1),
            wire.drain_record(0, _FakeClientStats()),
            wire.step2_request_record(1, [[1, 2]]),
            wire.step2_result_record(1, 0, [([], retrieved)]),
            wire.ping_record(0),
            wire.pong_record(0, 1, (0, 2), 9),
        ]
        for record in records:
            assert record["schema"] == wire.SCHEMA
            assert wire.check_schema(decode(record)) is None


class TestClusterRecords:
    def _retrieved(self):
        return RetrievalResult(
            queries=[5, 9, 12],
            levels={
                31: LevelHits(taxids=np.asarray([562, 562, 1280], np.int64),
                              offsets=np.asarray([0, 2, 2, 3], np.int64)),
                21: LevelHits(taxids=np.asarray([99], np.int64),
                              offsets=np.asarray([0, 0, 1, 1], np.int64)),
            },
        )

    def test_retrieval_columns_roundtrip_bit_identical(self):
        original = self._retrieved()
        rebuilt = wire.parse_retrieval(decode(
            {"schema": wire.SCHEMA, **wire.retrieval_columns(original)}))
        assert list(rebuilt.queries) == list(original.queries)
        assert set(rebuilt.levels) == set(original.levels)
        for k, hits in original.levels.items():
            assert rebuilt.levels[k].taxids.tolist() == list(hits.taxids)
            assert rebuilt.levels[k].offsets.tolist() == list(hits.offsets)

    def test_retrieval_columns_accepts_list_columns(self):
        """The python backend's plain-list columns serialize identically."""
        listy = RetrievalResult(
            queries=[5], levels={31: LevelHits(taxids=[562], offsets=[0, 1])})
        assert (wire.retrieval_columns(listy)
                == {"queries": [5],
                    "levels": {"31": {"taxids": [562], "offsets": [0, 1]}}})

    def test_parse_retrieval_rejects_garbage(self):
        for payload in (None, [], {"levels": {}}):
            with pytest.raises(ValueError):
                wire.parse_retrieval(payload)

    def test_step2_request_roundtrip(self):
        record = decode(wire.step2_request_record(
            8, [np.asarray([3, 1], np.int64), [9]]))
        assert record["op"] == "step2"
        assert record["id"] == 8
        assert record["queries"] == [[3, 1], [9]]
        # json round-trip leaves plain ints, ready for another encode().
        assert all(isinstance(k, int)
                   for query in record["queries"] for k in query)

    def test_step2_result_roundtrip(self):
        original = self._retrieved()
        record = decode(wire.step2_result_record(
            8, 1, [(list(original.queries), original)]))
        assert record["op"] == "step2_result"
        assert (record["id"], record["node"]) == (8, 1)
        [(intersecting, rebuilt)] = wire.parse_step2_result(record)
        assert intersecting == [5, 9, 12]
        assert rebuilt.levels[31].taxids.tolist() == [562, 562, 1280]

    def test_parse_step2_result_requires_samples(self):
        with pytest.raises(ValueError):
            wire.parse_step2_result({"op": "step2_result", "id": 1})

    def test_ping_pong_roundtrip(self):
        ping = decode(wire.ping_record(3))
        assert (ping["op"], ping["id"]) == ("ping", 3)
        pong = decode(wire.pong_record(3, 1, (2, 4), served=17))
        assert pong["op"] == "pong"
        assert (pong["id"], pong["node"]) == (3, 1)
        assert pong["shards"] == [2, 4]
        assert pong["served"] == 17
