"""Cross-backend equivalence: python and numpy must agree bit for bit.

MegIS's accuracy-identity claim requires every Step-2 execution engine to
produce exactly the reference results — same intersecting k-mers, same KSS
retrievals, same abundance profiles.  These tests pit the backends against
each other and against the software references on randomized inputs,
including empty buckets, empty samples, and single-channel configurations.
"""

from __future__ import annotations

import random

import pytest

from repro.backends import (
    PhaseTimings,
    available_backends,
    default_backend,
    get_backend,
    set_default_backend,
)
from repro.backends.numpy_backend import as_column, stripe_columns
from repro.databases.sorted_db import SortedKmerDatabase
from repro.megis.host import KmerBucketPartitioner
from repro.megis.pipeline import MegisConfig, MegisPipeline
from tests.conftest import SKETCH_K

BACKENDS = ("python", "numpy")
SPACE = 1 << (2 * SKETCH_K)


def random_database(rng: random.Random, size: int, k: int = SKETCH_K) -> SortedKmerDatabase:
    kmers = sorted(rng.sample(range(1 << (2 * k)), size))
    owners = [frozenset({rng.randrange(1000, 1010)}) for _ in kmers]
    return SortedKmerDatabase(k, kmers, owners)


def random_query(rng: random.Random, database: SortedKmerDatabase, n: int) -> list:
    hits = rng.sample(database.kmers, min(n // 2, len(database)))
    misses = [rng.randrange(SPACE) for _ in range(n - len(hits))]
    return sorted(set(hits + misses))


def bucketize(query: list, edges: list) -> list:
    """Split a sorted query into (lo, hi, kmers) buckets at the given edges."""
    from bisect import bisect_left

    bounds = [0] + sorted(edges) + [SPACE]
    return [
        (lo, hi, query[bisect_left(query, lo):bisect_left(query, hi)])
        for lo, hi in zip(bounds, bounds[1:])
    ]


class TestRegistry:
    def test_available(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_backend("fortran")
        with pytest.raises(ValueError):
            set_default_backend("fortran")

    def test_instance_passthrough(self):
        backend = get_backend("numpy")
        assert get_backend(backend) is backend

    def test_default_roundtrip(self):
        before = default_backend()
        previous = set_default_backend("numpy")
        try:
            assert previous == before
            assert default_backend() == "numpy"
            assert get_backend(None).name == "numpy"
        finally:
            set_default_backend(before)

    def test_config_rejects_unknown(self):
        with pytest.raises(ValueError):
            MegisConfig(backend="fortran")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("n_channels", [1, 5])
class TestIntersectEquivalence:
    def test_matches_reference(self, backend, seed, n_channels):
        rng = random.Random(seed)
        database = random_database(rng, 400)
        query = random_query(rng, database, 150)
        result = get_backend(backend).intersect(database, query, n_channels)
        assert result == database.intersect(query)

    def test_bucketed_matches_flat(self, backend, seed, n_channels):
        rng = random.Random(seed + 100)
        database = random_database(rng, 300)
        query = random_query(rng, database, 120)
        edges = sorted(rng.sample(range(1, SPACE), 5))
        buckets = bucketize(query, edges)
        assert any(not kmers for _, _, kmers in buckets) or len(buckets) == 6
        result = get_backend(backend).intersect_bucketed(database, buckets, n_channels)
        assert result == database.intersect(query)


@pytest.mark.parametrize("backend", BACKENDS)
class TestIntersectEdgeCases:
    def test_empty_query(self, backend):
        database = random_database(random.Random(3), 50)
        assert get_backend(backend).intersect(database, [], 4) == []

    def test_empty_database(self, backend):
        database = SortedKmerDatabase(SKETCH_K, [], [])
        assert get_backend(backend).intersect(database, [1, 2, 3], 4) == []

    def test_all_buckets_empty(self, backend):
        database = random_database(random.Random(4), 50)
        buckets = [(0, 100, []), (100, SPACE, [])]
        assert get_backend(backend).intersect_bucketed(database, buckets, 2) == []

    def test_out_of_order_buckets_still_sorted(self, backend):
        """Single-sample bucketed output is sorted regardless of bucket order."""
        rng = random.Random(7)
        database = random_database(rng, 200)
        query = random_query(rng, database, 100)
        buckets = list(reversed(bucketize(query, [SPACE // 3, 2 * SPACE // 3])))
        result = get_backend(backend).intersect_bucketed(database, buckets, 4)
        assert result == database.intersect(query)

    def test_timings_recorded(self, backend):
        rng = random.Random(5)
        database = random_database(rng, 200)
        query = random_query(rng, database, 80)
        timings = PhaseTimings(backend=backend)
        result = get_backend(backend).intersect(database, query, 4, timings)
        assert timings.db_kmers_streamed == len(database)
        assert timings.query_kmers_streamed == len(query)
        assert timings.db_stream_passes == 1
        assert sum(timings.channel_matches.values()) == len(result)

    def test_channel_attribution_matches_python(self, backend):
        """Striping attribution is identical across backends (§4.5)."""
        rng = random.Random(6)
        database = random_database(rng, 300)
        query = random_query(rng, database, 150)
        mine = PhaseTimings()
        reference = PhaseTimings()
        get_backend(backend).intersect(database, query, 3, mine)
        get_backend("python").intersect(database, query, 3, reference)
        assert mine.channel_matches == reference.channel_matches


@pytest.mark.parametrize("backend", BACKENDS)
class TestMultiSampleBatching:
    def _samples(self, rng, database, n_samples):
        samples = []
        for _ in range(n_samples):
            query = random_query(rng, database, rng.randrange(40, 120))
            edges = sorted(rng.sample(range(1, SPACE), rng.randrange(2, 6)))
            samples.append(bucketize(query, edges))
        return samples

    @pytest.mark.parametrize("seed", [10, 11])
    def test_batched_equals_individual(self, backend, seed):
        rng = random.Random(seed)
        database = random_database(rng, 350)
        samples = self._samples(rng, database, 3)
        engine = get_backend(backend)
        batched = engine.intersect_bucketed_multi(database, samples, 4)
        for got, buckets in zip(batched, samples):
            assert got == engine.intersect_bucketed(database, buckets, 4)

    def test_cross_backend_identical(self, backend, kss_tables, sorted_db, sample):
        partitioner = KmerBucketPartitioner(k=SKETCH_K, n_buckets=8)
        samples = [
            [(b.lo, b.hi, b.kmers) for b in partitioner.partition(reads).buckets]
            for reads in (sample.reads[:150], sample.reads[150:300])
        ]
        mine = get_backend(backend).intersect_bucketed_multi(sorted_db, samples, 4)
        reference = get_backend("python").intersect_bucketed_multi(sorted_db, samples, 4)
        assert mine == reference

    def test_empty_sample_in_batch(self, backend):
        rng = random.Random(12)
        database = random_database(rng, 100)
        query = random_query(rng, database, 40)
        samples = [bucketize(query, [SPACE // 2]), bucketize([], [SPACE // 2])]
        engine = get_backend(backend)
        batched = engine.intersect_bucketed_multi(database, samples, 2)
        assert batched[0] == database.intersect(query)
        assert batched[1] == []

    def test_no_samples(self, backend):
        database = random_database(random.Random(13), 30)
        assert get_backend(backend).intersect_bucketed_multi(database, [], 2) == []

    def test_out_of_order_buckets_rejected(self, backend):
        """Mis-ordered buckets would silently mis-slice; they must raise."""
        rng = random.Random(15)
        database = random_database(rng, 60)
        query = random_query(rng, database, 30)
        ordered = bucketize(query, [SPACE // 2])
        with pytest.raises(ValueError):
            get_backend(backend).intersect_bucketed_multi(
                database, [list(reversed(ordered))], 2
            )

    def test_out_of_range_kmers_rejected(self, backend):
        database = random_database(random.Random(16), 60)
        samples = [[(0, 10, [3, 7]), (10, 20, [5, 12])]]  # 5 < lo of its bucket
        with pytest.raises(ValueError):
            get_backend(backend).intersect_bucketed_multi(database, samples, 2)

    def test_database_streamed_once_per_batch(self, backend):
        """The batch streams each database interval once, not once per sample."""
        rng = random.Random(14)
        database = random_database(rng, 200)
        queries = [random_query(rng, database, 60) for _ in range(3)]
        samples = [bucketize(q, [SPACE // 2]) for q in queries]
        batched = PhaseTimings()
        get_backend(backend).intersect_bucketed_multi(database, samples, 2, batched)
        individual = PhaseTimings()
        for buckets in samples:
            get_backend(backend).intersect_bucketed(database, buckets, 2, individual)
        assert batched.samples_batched == 3
        assert batched.db_kmers_streamed == len(database)
        assert individual.db_kmers_streamed == 3 * len(database)


@pytest.mark.parametrize("backend", BACKENDS)
class TestShardedKernels:
    """Backend-level sharded Step 2 (§6.1): range split inside the backend."""

    @pytest.mark.parametrize("seed", [30, 31, 32])
    def test_sharded_matches_reference(self, backend, seed):
        from repro.megis.multissd import split_database

        rng = random.Random(seed)
        database = random_database(rng, 400)
        query = random_query(rng, database, 150)
        shards = split_database(database, rng.randrange(1, 6))
        per_shard = get_backend(backend).intersect_sharded(
            [(s.lo, s.hi, s.database) for s in shards], query, 4
        )
        assert len(per_shard) == len(shards)
        flat = [x for partial in per_shard for x in partial]
        assert flat == database.intersect(query)

    @pytest.mark.parametrize("seed", [40, 41])
    def test_sharded_multi_matches_whole_db_batch(self, backend, seed):
        from repro.megis.multissd import split_database

        rng = random.Random(seed)
        database = random_database(rng, 350)
        samples = []
        for _ in range(3):
            query = random_query(rng, database, rng.randrange(40, 120))
            edges = sorted(rng.sample(range(1, SPACE), rng.randrange(2, 6)))
            samples.append(bucketize(query, edges))
        shards = split_database(database, 3)
        engine = get_backend(backend)
        sharded = engine.intersect_sharded_multi(
            [(s.lo, s.hi, s.database) for s in shards], samples, 4
        )
        assert sharded == engine.intersect_bucketed_multi(database, samples, 4)

    def test_sharded_cross_backend(self, backend):
        from repro.megis.multissd import split_database

        rng = random.Random(50)
        database = random_database(rng, 300)
        query = random_query(rng, database, 120)
        shards = [(s.lo, s.hi, s.database) for s in split_database(database, 4)]
        mine = get_backend(backend).intersect_sharded(shards, query, 4)
        reference = get_backend("python").intersect_sharded(shards, query, 4)
        assert mine == reference

    def test_no_shards(self, backend):
        assert get_backend(backend).intersect_sharded([], [1, 2, 3], 2) == []
        assert get_backend(backend).intersect_sharded_multi([], [], 2) == []


@pytest.mark.parametrize("backend", BACKENDS)
class TestRetrievalEquivalence:
    def test_matches_reference(self, backend, kss_tables, sorted_db):
        queries = sorted(set(sorted_db.kmers[::4]))
        assert get_backend(backend).retrieve(kss_tables, queries) == kss_tables.retrieve(queries)

    def test_random_queries_match_reference(self, backend, kss_tables):
        rng = random.Random(20)
        queries = sorted({rng.randrange(SPACE) for _ in range(200)})
        assert get_backend(backend).retrieve(kss_tables, queries) == kss_tables.retrieve(queries)

    def test_empty(self, backend, kss_tables):
        assert get_backend(backend).retrieve(kss_tables, []) == {}

    def test_unsorted_rejected(self, backend, kss_tables):
        with pytest.raises(ValueError):
            get_backend(backend).retrieve(kss_tables, [9, 1])

    def test_kss_backend_param(self, backend, kss_tables, sorted_db):
        queries = sorted(set(sorted_db.kmers[::6]))
        assert kss_tables.retrieve(queries, backend=backend) == kss_tables.retrieve(queries)


class TestDatabaseBackendParam:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_intersect_delegates(self, backend, sorted_db):
        query = sorted(set(sorted_db.kmers[::3] + [0, SPACE - 1]))
        assert sorted_db.intersect(query, backend=backend) == sorted_db.intersect(query)

    def test_column_cached_and_sorted(self, sorted_db):
        column = sorted_db.column()
        assert sorted_db.column() is column
        assert len(column) == len(sorted_db)
        assert [int(x) for x in column] == sorted_db.kmers

    def test_stripe_columns_partition(self, sorted_db):
        column = sorted_db.column()
        stripes = stripe_columns(column, 4)
        assert sum(len(s) for s in stripes) == len(column)
        merged = sorted(int(x) for s in stripes for x in s)
        assert merged == sorted_db.kmers

    def test_big_k_uses_object_dtype(self):
        # k = 60 (the paper's choice) needs 120-bit k-mers; the columnar
        # path must stay correct beyond uint64.
        k = 60
        kmers = sorted({(1 << 100) + i * 7 for i in range(50)})
        database = SortedKmerDatabase(k, kmers, [frozenset({1})] * len(kmers))
        assert database.column().dtype == object
        query = kmers[::3] + [(1 << 119) + 1]
        for backend in BACKENDS:
            assert database.intersect(query, backend=backend) == database.intersect(query)

    def test_as_column_empty(self, sorted_db):
        assert len(as_column([], sorted_db.column().dtype)) == 0


class TestPipelineEquivalence:
    @pytest.fixture(scope="class")
    def per_backend_results(self, sorted_db, sketch_db, sample):
        results = {}
        for backend in BACKENDS:
            pipeline = MegisPipeline(
                sorted_db, sketch_db, sample.references,
                config=MegisConfig(backend=backend),
            )
            results[backend] = pipeline.analyze(sample.reads)
        return results

    def test_identical_outputs(self, per_backend_results):
        python, numpy = (per_backend_results[b] for b in BACKENDS)
        assert python.intersecting_kmers == numpy.intersecting_kmers
        assert python.sketch_hits == numpy.sketch_hits
        assert python.candidates == numpy.candidates
        assert python.profile.fractions == numpy.profile.fractions

    def test_timings_populated(self, per_backend_results):
        for backend, result in per_backend_results.items():
            assert result.timings.backend == backend
            assert result.timings.db_kmers_streamed > 0
            assert result.timings.query_kmers_streamed > 0
            assert result.timings.total_ms > 0
            assert result.timings.samples_batched == 1

    def test_multi_sample_batched_matches_individual(self, sorted_db, sketch_db, sample):
        pipeline = MegisPipeline(
            sorted_db, sketch_db, sample.references,
            config=MegisConfig(backend="numpy"),
        )
        halves = [sample.reads[:200], sample.reads[200:]]
        batched = pipeline.analyze_multi(halves)
        individual = [pipeline.analyze(reads) for reads in halves]
        for got, want in zip(batched, individual):
            assert got.intersecting_kmers == want.intersecting_kmers
            assert got.candidates == want.candidates
            assert got.profile.fractions == want.profile.fractions
            assert got.timings.samples_batched == 2
            # The batch streams the database once for both samples.
            assert got.timings.db_kmers_streamed < (
                individual[0].timings.db_kmers_streamed
                + individual[1].timings.db_kmers_streamed
            )

    def test_multi_sample_empty(self, sorted_db, sketch_db, sample):
        pipeline = MegisPipeline(sorted_db, sketch_db, sample.references)
        assert pipeline.analyze_multi([]) == []

    def test_sharded_pipeline_bit_identical(self, sorted_db, sketch_db, sample,
                                            per_backend_results):
        """n_ssds > 1 changes nothing observable: same intersections,
        candidates, and abundance profile as the single-SSD python run."""
        reference = per_backend_results["python"]
        for backend in BACKENDS:
            pipeline = MegisPipeline(
                sorted_db, sketch_db, sample.references,
                config=MegisConfig(backend=backend, n_ssds=3),
            )
            result = pipeline.analyze(sample.reads)
            assert result.intersecting_kmers == reference.intersecting_kmers
            assert result.sketch_hits == reference.sketch_hits
            assert result.candidates == reference.candidates
            assert result.profile.fractions == reference.profile.fractions
