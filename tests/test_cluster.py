"""Cluster tier: placement, scatter-gather bit-identity, node failover.

Every serving test drives real TCP — in-process :class:`ClusterNode`
servers behind a :class:`ClusterRouter` — over the golden-fixture world,
and pins the routed results bit-identical to a serial single-host
``session.analyze``.  Failure injection uses :meth:`ClusterNode.kill`
(transport aborts: connection resets, exactly what a killed process
produces) to exercise the retry-once contract on both its arms: the
replica / respawned-node path must stay bit-identical, the unretryable
path must yield a structured ``node_failed`` frame — never a silent
drop.
"""

import asyncio
import json
from pathlib import Path

import pytest

from repro.databases.sketch import SketchDatabase
from repro.databases.sorted_db import SortedKmerDatabase
from repro.megis.cluster import (
    ClusterAnalysisSession,
    ClusterMap,
    ClusterNode,
    ClusterRouter,
    ClusterStepTwo,
    NodeEndpoint,
    NodeFailed,
)
from repro.megis.index import MegisIndex
from repro.megis.session import AnalysisSession, MegisConfig
from repro.sequences.reads import Read
from repro.workloads.cami import CamiDiversity, make_cami_sample

GOLDEN = Path(__file__).parent / "data" / "golden_pipeline.json"

N_CHUNKS = 3
N_SHARDS = 4
SCENARIO_TIMEOUT_S = 120


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def golden_world(golden):
    p = golden["params"]
    sample = make_cami_sample(
        CamiDiversity.MEDIUM,
        n_reads=p["n_reads"],
        n_genera=p["n_genera"],
        species_per_genus=p["species_per_genus"],
        genome_length=p["genome_length"],
        seed=p["seed"],
    )
    sorted_db = SortedKmerDatabase.build(sample.references, k=p["k"])
    sketch = SketchDatabase.build(
        sample.references,
        k_max=p["k"],
        smaller_ks=tuple(p["smaller_ks"]),
        sketch_fraction=p["sketch_fraction"],
    )
    return sample, MegisIndex(sorted_db, sketch, sample.references)


def _config(golden, **overrides):
    p = golden["params"]
    return MegisConfig(
        n_buckets=p["n_buckets"],
        min_containment=p["min_containment"],
        abundance_method="statistical",
        **overrides,
    )


@pytest.fixture(scope="module")
def chunks(golden_world):
    sample, _ = golden_world
    size = len(sample.reads) // N_CHUNKS
    return [
        [
            Read(read_id=j, sequence=r.sequence, true_taxid=0)
            for j, r in enumerate(sample.reads[i * size:(i + 1) * size])
        ]
        for i in range(N_CHUNKS)
    ]


@pytest.fixture(scope="module")
def requests_wire(chunks):
    return [
        {"schema": 1, "id": f"c{i}", "reads": [r.sequence for r in chunk]}
        for i, chunk in enumerate(chunks)
    ]


@pytest.fixture(scope="module")
def serial_records(golden_world, golden, chunks):
    """The single-host serial truth every routed result must equal."""
    _, index = golden_world
    session = AnalysisSession(index, _config(golden)).warm()
    expected = {}
    for i, chunk in enumerate(chunks):
        result = session.analyze(chunk)
        expected[f"c{i}"] = (
            sorted(int(t) for t in result.candidates),
            {str(t): f
             for t, f in sorted(result.profile.fractions.items())},
        )
    return expected


def run_scenario(coro):
    async def bounded():
        return await asyncio.wait_for(coro, timeout=SCENARIO_TIMEOUT_S)
    return asyncio.run(bounded())


def make_node_session(index, golden, cluster_map, node_id):
    return AnalysisSession(
        index,
        _config(golden, n_ssds=cluster_map.n_shards),
        shard_range=cluster_map.group(node_id),
    )


class Cluster:
    """In-process bring-up helper: N nodes (+ optional replicas), one
    router, all torn down in reverse order."""

    def __init__(self, index, golden, n_nodes, *, n_shards=N_SHARDS,
                 replicas=(), heartbeat_ms=None, timeout_s=10.0,
                 workers=2):
        self.index = index
        self.golden = golden
        self.map = ClusterMap.for_index(index, n_nodes, n_shards)
        self.replica_ids = tuple(replicas)
        self.heartbeat_ms = heartbeat_ms
        self.timeout_s = timeout_s
        self.workers = workers
        self.nodes = []
        self.replicas = {}
        self.router = None
        self.step_two = None

    async def __aenter__(self):
        endpoints = []
        for node_id in range(self.map.n_nodes):
            node = ClusterNode(
                make_node_session(self.index, self.golden, self.map,
                                  node_id),
                node_id, self.map,
            )
            address = await node.start()
            self.nodes.append(node)
            replica_address = None
            if node_id in self.replica_ids:
                replica = ClusterNode(
                    make_node_session(self.index, self.golden, self.map,
                                      node_id),
                    node_id, self.map,
                )
                replica_address = await replica.start()
                self.replicas[node_id] = replica
            endpoints.append(NodeEndpoint(node_id, address,
                                          replica=replica_address))
        self.step_two = ClusterStepTwo(self.map, endpoints,
                                       timeout_s=self.timeout_s)
        local = AnalysisSession(self.index, _config(self.golden))
        self.router = ClusterRouter(
            ClusterAnalysisSession(local, self.step_two),
            heartbeat_ms=self.heartbeat_ms,
            workers=self.workers,
        )
        await self.router.start()
        return self

    async def __aexit__(self, exc_type, exc, tb):
        await self.router.drain()
        for node in list(self.replicas.values()) + self.nodes:
            await node.stop()

    async def respawn(self, node_id):
        """A fresh node process on the SAME port (the respawn story)."""
        host, port = self.step_two.endpoints[node_id].address
        node = ClusterNode(
            make_node_session(self.index, self.golden, self.map, node_id),
            node_id, self.map, host=host, port=port,
        )
        await node.start()
        self.nodes[node_id] = node
        return node


async def client_roundtrip(router, frames):
    host, port = router.bound_address
    reader, writer = await asyncio.open_connection(host, port)
    for frame in frames:
        writer.write((json.dumps(frame) + "\n").encode("utf-8"))
        await writer.drain()
    writer.write_eof()
    records = []
    while True:
        line = await reader.readline()
        if not line:
            break
        records.append(json.loads(line))
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return records


def assert_bit_identical(records, serial_records, expected_ids):
    served = {r["id"]: r for r in records if "candidates" in r}
    assert set(served) == set(expected_ids)
    for request_id, record in served.items():
        assert record["schema"] == 1
        assert (record["candidates"], record["profile"]) \
            == serial_records[request_id], (
            "cluster result must be bit-identical to serial analyze"
        )


class TestClusterMap:
    def test_contiguous_ascending_groups(self):
        cluster_map = ClusterMap(n_nodes=3, n_shards=8)
        groups = cluster_map.groups
        assert groups == [(0, 2), (2, 5), (5, 8)]
        # Contiguity: every shard owned exactly once, in order.
        covered = [s for start, stop in groups for s in range(start, stop)]
        assert covered == list(range(8))
        for shard in range(8):
            start, stop = cluster_map.group(cluster_map.node_of(shard))
            assert start <= shard < stop

    def test_one_shard_per_node_default(self, golden_world):
        _, index = golden_world
        cluster_map = ClusterMap.for_index(index, 4)
        assert (cluster_map.n_nodes, cluster_map.n_shards) == (4, 4)
        assert cluster_map.fingerprint["db_kmers"] == len(index.database)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterMap(n_nodes=0, n_shards=4)
        with pytest.raises(ValueError):
            ClusterMap(n_nodes=4, n_shards=2)
        with pytest.raises(ValueError):
            ClusterMap(n_nodes=2, n_shards=4).group(2)
        with pytest.raises(ValueError):
            ClusterMap(n_nodes=2, n_shards=4).node_of(4)

    def test_save_load_roundtrip(self, golden_world, tmp_path):
        _, index = golden_world
        cluster_map = ClusterMap.for_index(index, 2, N_SHARDS)
        path = cluster_map.save(ClusterMap.sibling_path(
            tmp_path / "world.megis"))
        assert path.name == "world.megis.cluster.json"
        loaded = ClusterMap.load(path)
        assert loaded == cluster_map
        assert loaded.fingerprint == cluster_map.fingerprint
        loaded.verify(index)  # same build: accepted

    def test_load_rejects_tampered_groups(self, tmp_path):
        path = tmp_path / "map.json"
        ClusterMap(n_nodes=2, n_shards=4).save(path)
        payload = json.loads(path.read_text())
        payload["groups"] = [[0, 1], [1, 4]]  # not the deterministic split
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="deterministic placement"):
            ClusterMap.load(path)

    def test_load_rejects_wrong_kind_and_schema(self, tmp_path):
        path = tmp_path / "map.json"
        path.write_text(json.dumps({"kind": "something_else"}))
        with pytest.raises(ValueError, match="not a cluster map"):
            ClusterMap.load(path)
        path.write_text(json.dumps(
            {"kind": "cluster_map", "schema": 99, "n_nodes": 1,
             "n_shards": 1}))
        with pytest.raises(ValueError, match="schema"):
            ClusterMap.load(path)

    def test_verify_rejects_different_index_build(self, golden_world):
        _, index = golden_world
        cluster_map = ClusterMap(
            n_nodes=2, n_shards=4,
            fingerprint={"k": 11, "db_kmers": 1, "kss_rows": 1},
        )
        with pytest.raises(ValueError, match="different index build"):
            cluster_map.verify(index)


class TestShardRangeSession:
    def test_full_pipeline_refused_on_partial_session(self, golden_world,
                                                      golden, chunks):
        _, index = golden_world
        cluster_map = ClusterMap.for_index(index, 2, N_SHARDS)
        session = make_node_session(index, golden, cluster_map, 0)
        with pytest.raises(ValueError, match="step_two_partial"):
            session.analyze(chunks[0])
        with pytest.raises(ValueError, match="step_two_partial"):
            session.analyze_batch([chunks[0]])

    def test_shard_range_validation(self, golden_world, golden):
        _, index = golden_world
        with pytest.raises(ValueError, match="shard_range"):
            AnalysisSession(index, _config(golden, n_ssds=4),
                            shard_range=(2, 2))
        with pytest.raises(ValueError, match="shard_range"):
            AnalysisSession(index, _config(golden, n_ssds=4),
                            shard_range=(0, 5))

    def test_node_rejects_mismatched_session(self, golden_world, golden):
        _, index = golden_world
        cluster_map = ClusterMap.for_index(index, 2, N_SHARDS)
        wrong = make_node_session(index, golden, cluster_map, 1)
        with pytest.raises(ValueError, match="must serve shards"):
            ClusterNode(wrong, 0, cluster_map)

    def test_partials_concatenate_to_single_host_step_two(
        self, golden_world, golden, chunks
    ):
        """The data-path core, no sockets: per-node partials gathered in
        node order equal the full single-session Step 2."""
        from repro.backends import PhaseTimings, RetrievalResult
        from repro.megis.session import MegisResult

        _, index = golden_world
        cluster_map = ClusterMap.for_index(index, 2, N_SHARDS)
        full = AnalysisSession(index, _config(golden)).warm()
        reference = full.analyze(chunks[0])

        sessions = [
            make_node_session(index, golden, cluster_map, w).warm()
            for w in range(2)
        ]
        scratch = MegisResult(timings=PhaseTimings(backend="python"))
        buckets = full._partition(chunks[0], scratch)
        query = buckets.merged_column()
        partials = [s.step_two_partial([query])[0] for s in sessions]
        gathered = RetrievalResult.concatenate([p[1] for p in partials])
        intersecting = [k for p in partials for k in p[0]]

        clustered = MegisResult(timings=PhaseTimings(backend="python"))
        full._finish_step_two(clustered, intersecting, gathered)
        assert sorted(clustered.candidates) == sorted(reference.candidates)


class TestBitIdentity:
    @pytest.mark.parametrize("n_nodes", [2, 4])
    def test_routed_results_equal_serial(self, golden_world, golden,
                                         requests_wire, serial_records,
                                         n_nodes):
        _, index = golden_world

        async def scenario():
            async with Cluster(index, golden, n_nodes) as cluster:
                records = await client_roundtrip(cluster.router,
                                                 requests_wire)
                return records, cluster.step_two.stats.scatters

        records, scatters = run_scenario(scenario())
        assert_bit_identical(records, serial_records,
                             [f"c{i}" for i in range(N_CHUNKS)])
        assert scatters >= 1

    def test_heartbeat_tracks_live_nodes(self, golden_world, golden,
                                         requests_wire):
        _, index = golden_world

        async def scenario():
            async with Cluster(index, golden, 2,
                               heartbeat_ms=50.0) as cluster:
                await client_roundtrip(cluster.router, requests_wire[:1])
                await asyncio.sleep(0.3)
                return dict(cluster.step_two.health), \
                    cluster.step_two.stats.pongs

        health, pongs = run_scenario(scenario())
        assert pongs >= 2
        assert all(h.alive for h in health.values())
        assert sum(h.served for h in health.values()) >= 1


class TestFailover:
    def test_killed_primary_fails_over_to_replica_bit_identical(
        self, golden_world, golden, requests_wire, serial_records
    ):
        """One injected node kill with a standby configured: the request
        retries onto the replica and the result stays bit-identical."""
        _, index = golden_world

        async def scenario():
            async with Cluster(index, golden, 2,
                               replicas=(1,)) as cluster:
                cluster.nodes[1].kill()
                records = await client_roundtrip(cluster.router,
                                                 requests_wire)
                return records, cluster.step_two.stats

        records, stats = run_scenario(scenario())
        assert_bit_identical(records, serial_records,
                             [f"c{i}" for i in range(N_CHUNKS)])
        assert stats.node_retries >= 1
        assert stats.node_failures == 0

    def test_dead_primary_marked_by_heartbeat_routes_to_replica_first(
        self, golden_world, golden, requests_wire, serial_records
    ):
        _, index = golden_world

        async def scenario():
            async with Cluster(index, golden, 2, replicas=(0,),
                               heartbeat_ms=40.0) as cluster:
                cluster.nodes[0].kill()
                # Let heartbeats observe the death.
                for _ in range(50):
                    await asyncio.sleep(0.05)
                    if cluster.step_two.health[0].alive is False:
                        break
                assert cluster.step_two.health[0].alive is False
                retries_before = cluster.step_two.stats.node_retries
                records = await client_roundtrip(cluster.router,
                                                 requests_wire[:1])
                return records, retries_before, cluster.step_two.stats

        records, retries_before, stats = run_scenario(scenario())
        assert_bit_identical(records, serial_records, ["c0"])
        # The replica was the FIRST attempt — no retry was needed.
        assert stats.node_retries == retries_before

    def test_killed_node_respawned_on_same_port_serves_retry(
        self, golden_world, golden, requests_wire, serial_records
    ):
        """No replica: the single retry reconnects to the same address,
        where a respawned node answers — bit-identical."""
        _, index = golden_world

        async def scenario():
            async with Cluster(index, golden, 2) as cluster:
                cluster.nodes[0].kill()
                await cluster.respawn(0)
                records = await client_roundtrip(cluster.router,
                                                 requests_wire)
                return records, cluster.step_two.stats

        records, stats = run_scenario(scenario())
        assert_bit_identical(records, serial_records,
                             [f"c{i}" for i in range(N_CHUNKS)])
        assert stats.node_failures == 0

    def test_unretryable_death_yields_structured_node_failed_frame(
        self, golden_world, golden, requests_wire
    ):
        """Kill with no replica and no respawn: the accepted request must
        come back as a structured node_failed error frame — the
        connection stays up and nothing is silently dropped."""
        _, index = golden_world

        async def scenario():
            async with Cluster(index, golden, 2) as cluster:
                cluster.nodes[1].kill()
                records = await client_roundtrip(cluster.router,
                                                 requests_wire[:1])
                return records, cluster.step_two.stats, \
                    cluster.router.stats

        records, stats, gateway_stats = run_scenario(scenario())
        assert len(records) == 1
        frame = records[0]
        assert frame["schema"] == 1
        assert frame["id"] == "c0"
        assert "node_failed: node=1 after 2 attempts" in frame["error"]
        assert stats.node_failures >= 1
        # Accounted, not dropped: the request failed loudly.
        assert gateway_stats.requests_failed == 1

    def test_node_failed_str_is_the_wire_message(self):
        error = NodeFailed(3, attempts=2, reason="connection refused")
        assert str(error) == (
            "node_failed: node=3 after 2 attempts: connection refused"
        )


class TestNodeProtocol:
    async def _ask(self, node, frames):
        host, port = node.bound_address
        reader, writer = await asyncio.open_connection(host, port)
        for frame in frames:
            raw = frame if isinstance(frame, bytes) else (
                json.dumps(frame) + "\n").encode("utf-8")
            writer.write(raw)
        await writer.drain()
        writer.write_eof()
        records = []
        while True:
            line = await reader.readline()
            if not line:
                break
            records.append(json.loads(line))
        writer.close()
        return records

    def test_schema_enforced_and_errors_keep_connection(self, golden_world,
                                                        golden):
        _, index = golden_world
        cluster_map = ClusterMap.for_index(index, 2, N_SHARDS)

        async def scenario():
            node = ClusterNode(
                make_node_session(index, golden, cluster_map, 0),
                0, cluster_map,
            )
            async with node:
                return await self._ask(node, [
                    b"not json\n",
                    {"op": "step2", "id": 1, "queries": [[]]},
                    {"schema": 9, "op": "step2", "id": 2, "queries": [[]]},
                    {"schema": 1, "op": "warp", "id": 3},
                    {"schema": 1, "op": "step2", "id": 4,
                     "queries": "nope"},
                    {"schema": 1, "op": "ping", "id": 5},
                ])

        records = run_scenario(scenario())
        assert len(records) == 6
        assert "bad JSON" in records[0]["error"]
        assert "missing 'schema'" in records[1]["error"]
        assert "unsupported schema 9" in records[2]["error"]
        assert "unknown op" in records[3]["error"]
        assert "k-mer int lists" in records[4]["error"]
        pong = records[5]
        assert pong["op"] == "pong"
        assert pong["node"] == 0
        assert pong["shards"] == [0, 2]
