"""Tests for MegIS Step 2: in-storage intersection and taxID retrieval.

The invariant: the hardware-flavoured implementations must produce exactly
what the software references produce — SortedKmerDatabase.intersect for the
Intersect units, KssTables.retrieve and SketchDatabase.lookup for the
TaxIdRetriever's streaming KSS pass.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.megis.isp import IntersectUnit, IspStepTwo, TaxIdRetriever, stripe_database
from tests.conftest import SKETCH_K


class TestIntersectUnit:
    def test_basic_merge(self):
        unit = IntersectUnit(channel=0)
        assert unit.intersect([1, 3, 5, 7], [2, 3, 7, 9]) == [3, 7]

    def test_empty_streams(self):
        unit = IntersectUnit(channel=0)
        assert unit.intersect([], [1, 2]) == []
        assert unit.intersect([1, 2], []) == []

    def test_comparisons_counted(self):
        unit = IntersectUnit(channel=0)
        unit.intersect([1, 2, 3], [2])
        assert unit.comparisons > 0

    @given(
        st.lists(st.integers(0, 500), max_size=60),
        st.lists(st.integers(0, 500), max_size=60),
    )
    def test_matches_set_intersection(self, a, b):
        db = sorted(set(a))
        query = sorted(set(b))
        unit = IntersectUnit(channel=0)
        assert unit.intersect(db, query) == sorted(set(db) & set(query))


class TestStriping:
    def test_stripes_partition_and_stay_sorted(self):
        kmers = list(range(0, 100, 3))
        stripes = stripe_database(kmers, 4)
        assert sorted(x for s in stripes for x in s) == kmers
        for stripe in stripes:
            assert stripe == sorted(stripe)

    def test_even_distribution(self):
        stripes = stripe_database(list(range(80)), 8)
        assert all(len(s) == 10 for s in stripes)

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            stripe_database([1], 0)


class TestIspStepTwo:
    def test_run_matches_reference_intersect(self, sorted_db, kss_tables, sample):
        from repro.megis.host import KmerBucketPartitioner

        buckets = KmerBucketPartitioner(k=SKETCH_K, n_buckets=8).partition(sample.reads)
        query = buckets.merged_sorted()
        isp = IspStepTwo(sorted_db, kss_tables, n_channels=8)
        intersecting, _ = isp.run(query)
        assert intersecting == sorted_db.intersect(query)

    def test_bucketed_equals_flat(self, sorted_db, kss_tables, sample):
        from repro.megis.host import KmerBucketPartitioner

        buckets = KmerBucketPartitioner(k=SKETCH_K, n_buckets=8).partition(sample.reads)
        isp = IspStepTwo(sorted_db, kss_tables, n_channels=4)
        flat, flat_taxids = isp.run(buckets.merged_sorted())
        bucketed, bucketed_taxids = isp.run_bucketed(
            (b.lo, b.hi, b.kmers) for b in buckets.buckets
        )
        assert bucketed == flat
        assert bucketed_taxids == flat_taxids

    def test_channel_count_does_not_change_result(self, sorted_db, kss_tables):
        query = sorted_db.kmers[::5]
        results = [
            IspStepTwo(sorted_db, kss_tables, n_channels=n).run(query)[0]
            for n in (1, 3, 8)
        ]
        assert results[0] == results[1] == results[2]


class TestTaxIdRetriever:
    def test_matches_kss_reference(self, kss_tables, sorted_db):
        queries = sorted(set(sorted_db.kmers[::4]))
        hardware = TaxIdRetriever(kss_tables).retrieve(queries)
        reference = kss_tables.retrieve(queries)
        assert hardware == reference

    def test_matches_sketch_lookup(self, kss_tables, sketch_db):
        queries = sorted(sketch_db.tables[SKETCH_K])[:250]
        results = TaxIdRetriever(kss_tables).retrieve(queries)
        for q in queries:
            assert results[q] == sketch_db.lookup(q)

    def test_empty_query(self, kss_tables):
        assert TaxIdRetriever(kss_tables).retrieve([]) == {}

    def test_unsorted_rejected(self, kss_tables):
        with pytest.raises(ValueError):
            TaxIdRetriever(kss_tables).retrieve([9, 1])

    def test_index_generator_advances(self, kss_tables, sketch_db):
        retriever = TaxIdRetriever(kss_tables)
        retriever.retrieve(sorted(sketch_db.tables[SKETCH_K])[:50])
        # One advance per prefix transition per level, capped by the early
        # exit once the query stream is exhausted.
        upper_bound = sum(
            len(kss_tables.sub_tables[k]) - 1 for k in kss_tables.smaller_ks
        )
        assert 0 < retriever.index_generator_advances <= upper_bound

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_random_queries_property(self, kss_tables, sketch_db, data):
        space = (1 << (2 * SKETCH_K)) - 1
        queries = sorted(
            set(
                data.draw(
                    st.lists(st.integers(min_value=0, max_value=space), max_size=25)
                )
            )
        )
        results = TaxIdRetriever(kss_tables).retrieve(queries)
        for q in queries:
            assert results[q] == sketch_db.lookup(q)
