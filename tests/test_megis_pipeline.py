"""End-to-end MegIS pipeline tests, including the accuracy-equivalence claim."""

import pytest

from repro.megis.abundance import build_unified_index, merge_species_indexes
from repro.megis.accelerator import accelerator_report, scale_area
from repro.megis.pipeline import MegisConfig, MegisPipeline
from repro.ssd.config import ssd_c
from repro.ssd.device import SSD
from repro.taxonomy.metrics import f1_score
from repro.tools.mapping import SpeciesIndex, UnifiedIndex
from repro.tools.metalign import MetalignPipeline
from repro.workloads.cami import CamiDiversity, make_cami_sample


@pytest.fixture(scope="module")
def pipelines(sorted_db, sketch_db, sample):
    megis = MegisPipeline(sorted_db, sketch_db, sample.references)
    metalign = MetalignPipeline(sorted_db, sketch_db, sample.references)
    return megis, metalign


class TestEquivalenceWithMetalign:
    """MegIS must match the accuracy-optimized baseline exactly (§5)."""

    def test_same_intersection(self, pipelines, sample):
        megis, metalign = pipelines
        assert (
            megis.analyze(sample.reads).intersecting_kmers
            == metalign.analyze(sample.reads).intersecting_kmers
        )

    def test_same_candidates_and_profile(self, pipelines, sample):
        megis, metalign = pipelines
        ours = megis.analyze(sample.reads)
        theirs = metalign.analyze(sample.reads)
        assert ours.candidates == theirs.candidates
        assert ours.profile.fractions == theirs.profile.fractions

    @pytest.mark.parametrize("diversity", list(CamiDiversity))
    @pytest.mark.parametrize("seed", [3, 19])
    def test_equivalence_across_samples(self, diversity, seed):
        from repro.databases.sketch import SketchDatabase
        from repro.databases.sorted_db import SortedKmerDatabase

        sample = make_cami_sample(
            diversity, n_reads=150, n_genera=3, species_per_genus=2,
            genome_length=1000, seed=seed,
        )
        db = SortedKmerDatabase.build(sample.references, k=20)
        sketch = SketchDatabase.build(sample.references, k_max=20, smaller_ks=(12, 8))
        megis = MegisPipeline(db, sketch, sample.references).analyze(sample.reads)
        metalign = MetalignPipeline(db, sketch, sample.references).analyze(sample.reads)
        assert megis.intersecting_kmers == metalign.intersecting_kmers
        assert megis.candidates == metalign.candidates
        assert megis.profile.fractions == metalign.profile.fractions


class TestPipelineBehaviour:
    def test_accuracy_against_truth(self, pipelines, sample):
        megis, _ = pipelines
        result = megis.analyze(sample.reads)
        assert f1_score(result.present(), sample.present_species()) > 0.8

    def test_presence_only_mode(self, pipelines, sample):
        megis, _ = pipelines
        result = megis.analyze(sample.reads, with_abundance=False)
        assert result.candidates
        assert len(result.profile) == 0
        assert result.merge_stats is None

    def test_stats_populated(self, pipelines, sample):
        megis, _ = pipelines
        result = megis.analyze(sample.reads)
        assert result.n_buckets == megis.config.n_buckets
        assert result.query_kmers > 0
        assert result.transfer_batches > 0
        assert result.merge_stats is not None
        assert result.merge_stats.entries_written > 0

    def test_multi_sample_matches_individual(self, pipelines, sample):
        megis, _ = pipelines
        halves = [sample.reads[:200], sample.reads[200:]]
        batched = megis.analyze_multi(halves)
        individual = [megis.analyze(reads) for reads in halves]
        for got, want in zip(batched, individual):
            assert got.candidates == want.candidates
            assert got.profile.fractions == want.profile.fractions

    def test_mismatched_k_rejected(self, sorted_db, sample):
        from repro.databases.sketch import SketchDatabase

        wrong = SketchDatabase.build(sample.references, k_max=16, smaller_ks=(8,))
        with pytest.raises(ValueError):
            MegisPipeline(sorted_db, wrong, sample.references)

    def test_with_ssd_attached(self, sorted_db, sketch_db, sample):
        ssd = SSD(ssd_c())
        pipeline = MegisPipeline(sorted_db, sketch_db, sample.references, ssd=ssd)
        result = pipeline.analyze(sample.reads)
        assert result.candidates
        # Mode restored and baseline metadata resident again.
        assert "baseline_l2p" in ssd.dram.allocations()

    def test_spill_reported_with_tiny_host_dram(self, sorted_db, sketch_db, sample):
        config = MegisConfig(host_dram_bytes=1024)
        pipeline = MegisPipeline(sorted_db, sketch_db, sample.references, config=config)
        result = pipeline.analyze(sample.reads, with_abundance=False)
        assert result.spilled_bytes > 0


class TestUnifiedIndexMerge:
    def test_streaming_merge_equals_reference(self, sample):
        refs = sample.references
        taxids = refs.species_taxids[:4]
        indexes = [SpeciesIndex.build(t, refs.sequence(t), 15) for t in taxids]
        merged, stats = merge_species_indexes(indexes)
        reference = UnifiedIndex.merge(indexes)
        assert merged.entries == reference.entries
        assert merged.boundaries == reference.boundaries
        assert stats.entries_written == len(reference.entries)

    def test_shared_kmers_counted(self, sample):
        refs = sample.references
        # Same genus species share k-mers by construction.
        genus_species = [
            t for t in refs.species_taxids if refs.genus_of(t) == refs.genomes[
                refs.species_taxids[0]
            ].genus_id
        ]
        merged, stats = build_unified_index(refs, genus_species, k=15)
        assert stats.shared_kmers > 0

    def test_empty_candidates(self):
        merged, stats = merge_species_indexes([])
        assert len(merged) == 0
        assert stats.entries_read == 0

    def test_mixed_k_rejected(self, sample):
        refs = sample.references
        a = SpeciesIndex.build(1, refs.sequence(refs.species_taxids[0]), 10)
        b = SpeciesIndex.build(2, refs.sequence(refs.species_taxids[1]), 12)
        with pytest.raises(ValueError):
            merge_species_indexes([a, b])


class TestAccelerator:
    def test_table2_totals(self):
        report = accelerator_report(channels=8)
        assert report.total_area_mm2 == pytest.approx(0.0358, abs=0.005)
        assert report.total_power_mw == pytest.approx(7.658, abs=0.01)

    def test_32nm_area_and_core_fraction(self):
        report = accelerator_report(channels=8)
        assert report.area_mm2_at_32nm == pytest.approx(0.011, abs=0.001)
        assert report.fraction_of_cores == pytest.approx(0.017, abs=0.002)

    def test_power_efficiency(self):
        assert accelerator_report().power_efficiency_vs_cores == pytest.approx(26.85)

    def test_scales_with_channels(self):
        assert accelerator_report(16).total_power_mw > accelerator_report(8).total_power_mw

    def test_scale_area_unknown_node(self):
        with pytest.raises(KeyError):
            scale_area(1.0, 14)

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            accelerator_report(0)


class TestDeprecationShims:
    def test_both_shims_warn_on_construction(self, sorted_db, sketch_db,
                                             sample):
        """The facades still work but announce their replacement: the
        suite-wide filterwarnings ignore covers the legacy tests above;
        this is the one place the warnings themselves are asserted."""
        with pytest.warns(DeprecationWarning,
                          match="MegisPipeline is deprecated"):
            pipeline = MegisPipeline(sorted_db, sketch_db, sample.references)
        with pytest.warns(DeprecationWarning,
                          match="MetalignPipeline is deprecated"):
            metalign = MetalignPipeline(sorted_db, sketch_db,
                                        sample.references)
        # Shims stay functional: both delegate to a live AnalysisSession.
        assert pipeline.session.analyze(sample.reads[:20]).profile is not None
        assert metalign.session is not None
