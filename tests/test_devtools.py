"""The `repro check` framework: every rule, suppressions, CLI, config.

Fixture snippets live in ``tests/data/devtools/`` — one known-bad and
one known-good file per rule.  Bad fixtures mark each expected finding
with a trailing ``# violation`` comment, so the assertions pin the exact
(path, line) pairs the checker reports, not just the count.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import (
    META_RULE,
    CheckConfig,
    Finding,
    Suppressions,
    all_checkers,
    check_file,
    checker_for,
    load_config,
    path_matches,
    rule_table,
    run_check,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
DATA = Path(__file__).resolve().parent / "data" / "devtools"
RULES = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005")


def violation_lines(path: Path):
    """Line numbers carrying the fixture's ``# violation`` markers."""
    return [
        lineno
        for lineno, text in enumerate(path.read_text().splitlines(), start=1)
        if text.rstrip().endswith("# violation")
    ]


def fixture_config(rule: str) -> CheckConfig:
    """A config scoping ``rule`` onto the fixture directory."""
    return CheckConfig(
        root=REPO_ROOT,
        paths=("tests/data/devtools",),
        rule_paths={rule: ("tests/data/devtools",)},
    )


# ---------------------------------------------------------------------------
# Per-rule fixtures: known-bad files yield exactly the marked lines,
# known-good files yield nothing.

@pytest.mark.parametrize("rule", RULES)
def test_bad_fixture_reports_every_marked_line(rule):
    bad = DATA / f"{rule.lower()}_bad.py"
    expected = violation_lines(bad)
    assert expected, f"fixture {bad.name} must mark at least one violation"
    findings = check_file(bad, [checker_for(rule)], fixture_config(rule))
    assert [f.line for f in findings] == expected
    assert all(f.rule == rule for f in findings)
    assert all(f.path == f"tests/data/devtools/{bad.name}" for f in findings)


@pytest.mark.parametrize("rule", RULES)
def test_good_fixture_is_clean(rule):
    good = DATA / f"{rule.lower()}_good.py"
    findings = check_file(good, [checker_for(rule)], fixture_config(rule))
    assert findings == []


# ---------------------------------------------------------------------------
# Suppressions: reasoned noqas silence, reason-less noqas are findings.

def test_noqa_with_reason_suppresses(tmp_path):
    src = ("def risky(values=[]):  "
           "# repro: noqa[RPR005] fixture exercising the suppression path\n"
           "    return values\n")
    path = tmp_path / "suppressed.py"
    path.write_text(src)
    config = CheckConfig(root=tmp_path, paths=(".",),
                         rule_paths={"RPR005": (".",)})
    assert check_file(path, [checker_for("RPR005")], config) == []


def test_noqa_without_reason_is_reported(tmp_path):
    path = tmp_path / "lazy.py"
    path.write_text("def risky(values=[]):  # repro: noqa[RPR005]\n"
                    "    return values\n")
    config = CheckConfig(root=tmp_path, paths=(".",),
                         rule_paths={"RPR005": (".",)})
    findings = check_file(path, [checker_for("RPR005")], config)
    rules = sorted(f.rule for f in findings)
    # The reason-less noqa does NOT suppress, and is itself a finding.
    assert rules == [META_RULE, "RPR005"]


def test_suppressions_scan_parses_rule_and_requires_reason():
    sup = Suppressions.scan(
        "x = 1  # repro: noqa[RPR003] injected clock\n"
        "y = 2  # repro: noqa[RPR001]\n"
    )
    assert sup.by_line == {1: ("RPR003",)}
    assert sup.malformed == (2,)
    assert sup.covers(Finding("f.py", 1, "RPR003", "m"))
    assert not sup.covers(Finding("f.py", 1, "RPR001", "m"))


def test_syntax_error_is_a_meta_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    config = CheckConfig(root=tmp_path, paths=(".",))
    findings = check_file(path, all_checkers(), config)
    assert len(findings) == 1
    assert findings[0].rule == META_RULE
    assert "syntax error" in findings[0].message


# ---------------------------------------------------------------------------
# The meta-test: the repo itself is clean; a seeded violation is not.

def test_repro_check_exits_zero_on_the_repo(capsys):
    assert main(["check", "--root", str(REPO_ROOT)]) == 0
    out = capsys.readouterr()
    assert out.out == ""
    assert "0 findings" in out.err


def _seed_project(tmp_path: Path, fixture: Path) -> Path:
    """A throwaway project whose pyproject scopes every rule onto pkg/."""
    rule_tables = "".join(
        f"[tool.repro.check.{rule}]\npaths = [\"pkg\"]\n" for rule in RULES
    )
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro.check]\npaths = [\"pkg\"]\n" + rule_tables
    )
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    seeded = pkg / fixture.name
    seeded.write_text(fixture.read_text())
    return seeded


@pytest.mark.parametrize("rule", RULES)
def test_seeded_violation_reported_with_correct_path_and_line(rule, tmp_path):
    fixture = DATA / f"{rule.lower()}_bad.py"
    seeded = _seed_project(tmp_path, fixture)
    findings = [f for f in run_check(root=tmp_path) if f.rule == rule]
    assert [f.line for f in findings] == violation_lines(seeded)
    assert all(f.path == f"pkg/{fixture.name}" for f in findings)
    # ... and the CLI exit status turns red.
    assert main(["check", "--root", str(tmp_path)]) == 1


def test_rule_filter_limits_the_pass(tmp_path, capsys):
    _seed_project(tmp_path, DATA / "rpr005_bad.py")
    assert main(["check", "--root", str(tmp_path), "--rule", "RPR001"]) == 0
    assert main(["check", "--root", str(tmp_path), "--rule", "RPR005"]) == 1
    capsys.readouterr()


def test_json_format_uses_the_shared_emitter(tmp_path, capsys):
    from repro.reporting import render_json

    _seed_project(tmp_path, DATA / "rpr002_bad.py")
    assert main(["check", "--root", str(tmp_path), "--format", "json"]) == 1
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert payload["count"] == len(payload["findings"]) > 0
    finding = payload["findings"][0]
    assert finding["rule"] == "RPR002"
    assert finding["path"] == "pkg/rpr002_bad.py"
    # Byte-identical to the shared reporting emitter's dialect.
    assert out.rstrip("\n") == render_json(payload)


def test_list_rules_names_all_five(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out
    assert rule_table().splitlines() == sorted(rule_table().splitlines())


# ---------------------------------------------------------------------------
# Config plumbing

def test_repo_config_scopes_the_pass():
    config = load_config(REPO_ROOT)
    assert config.root == REPO_ROOT
    assert "src/repro" in config.paths


def test_path_matches_prefix_and_glob():
    assert path_matches("src/repro/megis/wire.py", ("src/repro",))
    assert path_matches("src/repro/megis/wire.py", ("src/*/megis/*.py",))
    assert not path_matches("tests/test_wire.py", ("src/repro",))
    # A no-wildcard pattern is a prefix, not a substring.
    assert not path_matches("src/repro_extras/x.py", ("src/repro",))


# ---------------------------------------------------------------------------
# Satellite: bench_compare shares the reporting emitter.

def test_bench_compare_json_format(tmp_path, capsys):
    import importlib.util

    from repro.reporting import render_json

    spec = importlib.util.spec_from_file_location(
        "bench_compare", REPO_ROOT / "benchmarks" / "bench_compare.py"
    )
    bench_compare = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench_compare)

    def artifact(name: str, mean: float) -> str:
        path = tmp_path / name
        path.write_text(json.dumps({"benchmarks": [
            {"name": "bench_a", "stats": {"mean": mean, "stddev": 0.0}},
        ]}))
        return str(path)

    old = artifact("old.json", 1.0)
    new = artifact("new.json", 3.0)
    assert bench_compare.main([old, new, "--format", "json"]) == 1
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert payload["rows"][0]["ratio"] == 3.0
    assert payload["regressions"] == ["bench_a"]
    assert out.rstrip("\n") == render_json(payload)
