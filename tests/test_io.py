"""Tests for FASTA/FASTQ parsing and formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.sequences.io import (
    FastaRecord,
    FormatError,
    format_fasta,
    format_fastq,
    parse_fasta,
    parse_fastq,
    reads_from_fastq,
    references_from_fasta,
    references_to_fasta,
)
from repro.sequences.reads import Read


class TestFasta:
    def test_parse_simple(self):
        records = parse_fasta(">a\nACGT\n>b\nTTTT\n")
        assert records == [FastaRecord("a", "ACGT"), FastaRecord("b", "TTTT")]

    def test_parse_wrapped_lines(self):
        records = parse_fasta(">a\nACGT\nACGT\n")
        assert records[0].sequence == "ACGTACGT"

    def test_parse_lowercase_normalized(self):
        assert parse_fasta(">a\nacgt\n")[0].sequence == "ACGT"

    def test_parse_blank_lines_ignored(self):
        assert len(parse_fasta(">a\nAC\n\n>b\nGT\n")) == 2

    def test_sequence_before_header_rejected(self):
        with pytest.raises(FormatError):
            parse_fasta("ACGT\n>a\nAC\n")

    def test_empty_header_rejected(self):
        with pytest.raises(FormatError):
            parse_fasta(">\nACGT\n")

    def test_empty_input(self):
        assert parse_fasta("") == []

    def test_format_wraps(self):
        text = format_fasta([FastaRecord("x", "A" * 150)], width=70)
        lines = text.strip().splitlines()
        assert lines[0] == ">x"
        assert len(lines[1]) == 70 and len(lines[3]) == 10

    def test_format_invalid_width(self):
        with pytest.raises(ValueError):
            format_fasta([], width=0)

    @given(st.lists(st.tuples(
        st.text(alphabet="abcXYZ09_", min_size=1, max_size=10),
        st.text(alphabet="ACGT", min_size=1, max_size=200),
    ), max_size=5))
    def test_roundtrip_property(self, raw):
        records = [FastaRecord(n, s) for n, s in raw]
        assert parse_fasta(format_fasta(records)) == records


class TestFastq:
    def test_roundtrip(self):
        reads = [Read(0, "ACGT", 5), Read(1, "TTAA", 6)]
        parsed = parse_fastq(format_fastq(reads))
        assert [seq for _, seq, _ in parsed] == ["ACGT", "TTAA"]

    def test_reads_from_fastq_loses_provenance(self):
        reads = [Read(0, "ACGT", 5)]
        loaded = reads_from_fastq(format_fastq(reads))
        assert loaded[0].sequence == "ACGT"
        assert loaded[0].true_taxid == 0

    def test_bad_line_count(self):
        with pytest.raises(FormatError):
            parse_fastq("@a\nACGT\n+\n")

    def test_bad_header(self):
        with pytest.raises(FormatError):
            parse_fastq("a\nACGT\n+\nIIII\n")

    def test_bad_separator(self):
        with pytest.raises(FormatError):
            parse_fastq("@a\nACGT\nx\nIIII\n")

    def test_quality_length_mismatch(self):
        with pytest.raises(FormatError):
            parse_fastq("@a\nACGT\n+\nII\n")

    def test_quality_char_validation(self):
        with pytest.raises(ValueError):
            format_fastq([], quality_char="II")


class TestReferenceRoundtrip:
    def test_roundtrip(self, references):
        text = references_to_fasta(references)
        loaded = references_from_fasta(text)
        assert set(loaded.genomes) == set(references.genomes)
        for taxid in references.genomes:
            assert loaded.sequence(taxid) == references.sequence(taxid)
            assert loaded.genus_of(taxid) == references.genus_of(taxid)

    def test_bad_header_rejected(self):
        with pytest.raises(FormatError):
            references_from_fasta(">whatever\nACGT\n")

    def test_bad_name_rejected(self):
        with pytest.raises(FormatError):
            references_from_fasta(">taxid|8|noclade\nACGT\n")
