"""Tests for the analytic timing model: structure, orderings, paper bands."""

import math

import pytest

from repro.perf.specs import baseline_system, cost_system, perf_system
from repro.perf.timing import Phase, TimingModel
from repro.ssd.config import GB, ssd_c, ssd_p
from repro.workloads.datasets import cami_spec


@pytest.fixture(scope="module")
def model_c():
    return TimingModel(baseline_system(ssd_c()), cami_spec("CAMI-M"))


@pytest.fixture(scope="module")
def model_p():
    return TimingModel(baseline_system(ssd_p()), cami_spec("CAMI-M"))


def gmean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


class TestBreakdownStructure:
    def test_phases_positive(self, model_c):
        for config in (
            model_c.popt(), model_c.aopt(), model_c.aopt(use_kss=True),
            model_c.sieve(), model_c.megis("ms"), model_c.megis("ms-nol"),
            model_c.megis("ms-cc"), model_c.megis("ext-ms"),
        ):
            assert config.total_seconds > 0
            assert all(p.seconds > 0 for p in config.phases)

    def test_negative_phase_rejected(self):
        with pytest.raises(ValueError):
            Phase("x", -1.0, frozenset())

    def test_tagged_seconds(self, model_c):
        popt = model_c.popt()
        assert popt.tagged_seconds("host_io") > 0
        assert popt.tagged_seconds("host_compute") > 0
        assert popt.tagged_seconds("isp") == 0

    def test_megis_has_isp_phase(self, model_c):
        assert model_c.megis("ms").tagged_seconds("isp") > 0

    def test_unknown_variant(self, model_c):
        with pytest.raises(ValueError):
            model_c.megis("ms-xyz")

    def test_as_dict_and_speedup(self, model_c):
        ms = model_c.megis("ms")
        popt = model_c.popt()
        assert set(ms.as_dict()) == {p.name for p in ms.phases}
        assert ms.speedup_over(popt) == pytest.approx(
            popt.total_seconds / ms.total_seconds
        )


class TestOrderings:
    """Who wins, and in the right direction, on both SSDs."""

    @pytest.mark.parametrize("fixture", ["model_c", "model_p"])
    def test_ms_is_fastest(self, fixture, request):
        model = request.getfixturevalue(fixture)
        ms = model.megis("ms").total_seconds
        for other in (
            model.popt(), model.aopt(), model.aopt(use_kss=True),
            model.sieve(), model.megis("ms-nol"), model.megis("ms-cc"),
            model.megis("ext-ms"),
        ):
            assert ms <= other.total_seconds

    @pytest.mark.parametrize("fixture", ["model_c", "model_p"])
    def test_aopt_slower_than_popt(self, fixture, request):
        model = request.getfixturevalue(fixture)
        assert model.aopt().total_seconds > model.popt().total_seconds

    @pytest.mark.parametrize("fixture", ["model_c", "model_p"])
    def test_kss_helps_aopt(self, fixture, request):
        model = request.getfixturevalue(fixture)
        assert model.aopt(use_kss=True).total_seconds < model.aopt().total_seconds

    @pytest.mark.parametrize("fixture", ["model_c", "model_p"])
    def test_sieve_helps_popt(self, fixture, request):
        model = request.getfixturevalue(fixture)
        assert model.sieve().total_seconds < model.popt().total_seconds

    def test_no_io_faster(self, model_c):
        assert model_c.popt(no_io=True).total_seconds < model_c.popt().total_seconds
        assert model_c.aopt(no_io=True).total_seconds < model_c.aopt().total_seconds


class TestPaperBands:
    """Loose assertions that headline ratios stay in the paper's ballpark."""

    def test_fig12_ms_vs_popt(self):
        for ssd, low, high in ((ssd_c(), 4.0, 8.0), (ssd_p(), 2.0, 7.0)):
            ratios = []
            for name in ("CAMI-L", "CAMI-M", "CAMI-H"):
                model = TimingModel(baseline_system(ssd), cami_spec(name))
                ratios.append(
                    model.popt().total_seconds / model.megis("ms").total_seconds
                )
            assert low < gmean(ratios) < high

    def test_fig12_ms_vs_aopt(self):
        for ssd, low, high in ((ssd_c(), 10.0, 25.0), (ssd_p(), 6.0, 25.0)):
            ratios = []
            for name in ("CAMI-L", "CAMI-M", "CAMI-H"):
                model = TimingModel(baseline_system(ssd), cami_spec(name))
                ratios.append(
                    model.aopt().total_seconds / model.megis("ms").total_seconds
                )
            assert low < gmean(ratios) < high

    def test_overlap_ablation_band(self, model_c, model_p):
        # Paper: MS-NOL costs 23.5% (SSD-C) / 34.9% (SSD-P).
        ratio_c = model_c.megis("ms-nol").total_seconds / model_c.megis("ms").total_seconds
        ratio_p = model_p.megis("ms-nol").total_seconds / model_p.megis("ms").total_seconds
        assert 1.15 < ratio_c < 1.40
        assert 1.20 < ratio_p < 1.50
        assert ratio_p > ratio_c

    def test_cores_ablation_band(self, model_c, model_p):
        # Paper: MS-CC costs 9% (SSD-C) / 43% (SSD-P).
        ratio_c = model_c.megis("ms-cc").total_seconds / model_c.megis("ms").total_seconds
        ratio_p = model_p.megis("ms-cc").total_seconds / model_p.megis("ms").total_seconds
        assert 1.02 < ratio_c < 1.2
        assert 1.25 < ratio_p < 1.6

    def test_ext_ms_ablation_band(self, model_c, model_p):
        ratio_c = model_c.megis("ext-ms").total_seconds / model_c.megis("ms").total_seconds
        ratio_p = model_p.megis("ext-ms").total_seconds / model_p.megis("ms").total_seconds
        assert 8.0 < ratio_c < 14.0
        assert 1.5 < ratio_p < 3.0

    def test_diversity_increases_megis_speedup(self):
        speedups = []
        for name in ("CAMI-L", "CAMI-M", "CAMI-H"):
            model = TimingModel(baseline_system(ssd_c()), cami_spec(name))
            speedups.append(
                model.aopt().total_seconds / model.megis("ms").total_seconds
            )
        assert speedups == sorted(speedups)


class TestDramAndScaling:
    def test_chunking_kicks_in_below_db_size(self):
        small = TimingModel(
            baseline_system(ssd_c()).with_dram(64 * GB), cami_spec("CAMI-M")
        )
        large = TimingModel(
            baseline_system(ssd_c()).with_dram(1000 * GB), cami_spec("CAMI-M")
        )
        assert small.popt().total_seconds > 2 * large.popt().total_seconds

    def test_megis_insensitive_to_dram_until_spill(self):
        base = TimingModel(
            baseline_system(ssd_c()).with_dram(1000 * GB), cami_spec("CAMI-M")
        ).megis("ms").total_seconds
        at_128 = TimingModel(
            baseline_system(ssd_c()).with_dram(128 * GB), cami_spec("CAMI-M")
        ).megis("ms").total_seconds
        at_32 = TimingModel(
            baseline_system(ssd_c()).with_dram(32 * GB), cami_spec("CAMI-M")
        ).megis("ms").total_seconds
        assert at_128 == pytest.approx(base)
        assert at_32 > base  # bucket spill

    def test_database_scaling_monotonic(self):
        times = []
        for scale in (0.5, 1.0, 2.0):
            model = TimingModel(
                baseline_system(ssd_c()), cami_spec("CAMI-M").scaled_database(scale)
            )
            times.append(model.megis("ms").total_seconds)
        assert times == sorted(times)

    def test_more_channels_speed_up_megis(self):
        slow = TimingModel(
            baseline_system(ssd_c()).with_channels(4), cami_spec("CAMI-M")
        ).megis("ms").total_seconds
        fast = TimingModel(
            baseline_system(ssd_c()).with_channels(16), cami_spec("CAMI-M")
        ).megis("ms").total_seconds
        assert fast < slow

    def test_more_ssds_speed_up_everyone(self):
        one = TimingModel(baseline_system(ssd_c(), n_ssds=1), cami_spec("CAMI-M"))
        eight = TimingModel(baseline_system(ssd_c(), n_ssds=8), cami_spec("CAMI-M"))
        assert eight.popt().total_seconds < one.popt().total_seconds
        assert eight.megis("ms").total_seconds < one.megis("ms").total_seconds


class TestAbundanceAndMultiSample:
    def test_abundance_adds_time(self, model_c):
        assert (
            model_c.megis("ms", abundance=True).total_seconds
            > model_c.megis("ms").total_seconds
        )

    def test_nidx_slower_than_ms(self, model_c, model_p):
        for model in (model_c, model_p):
            assert (
                model.megis_nidx().total_seconds
                > model.megis("ms", abundance=True).total_seconds
            )

    def test_multi_sample_anchored_at_single(self, model_c):
        single = model_c.megis("ms").total_seconds
        assert model_c.megis_multi(1).total_seconds == pytest.approx(single)

    def test_multi_sample_marginal_below_full_run(self, model_c):
        t4 = model_c.megis_multi(4).total_seconds
        t8 = model_c.megis_multi(8).total_seconds
        marginal = (t8 - t4) / 4
        assert marginal < model_c.megis("ms").total_seconds / 2

    def test_multi_sample_speedup_grows(self, model_c):
        speedups = [
            model_c.baseline_multi(n, "popt").total_seconds
            / model_c.megis_multi(n).total_seconds
            for n in (1, 4, 8, 16)
        ]
        assert speedups == sorted(speedups)

    def test_software_batching_slower_than_isp(self, model_c):
        assert (
            model_c.megis_multi(8, software=True).total_seconds
            > model_c.megis_multi(8).total_seconds
        )

    def test_invalid_inputs(self, model_c):
        with pytest.raises(ValueError):
            model_c.megis_multi(0)
        with pytest.raises(ValueError):
            model_c.baseline_multi(2, "nope")


class TestCostSystems:
    def test_ms_on_cheap_beats_baselines_on_rich(self):
        cheap = TimingModel(cost_system(), cami_spec("CAMI-M"))
        rich = TimingModel(perf_system(), cami_spec("CAMI-M"))
        ms_c = cheap.megis("ms").total_seconds
        assert ms_c < rich.popt().total_seconds
        assert ms_c < rich.aopt().total_seconds

    def test_prices(self):
        assert cost_system().price_usd == pytest.approx(658)
        assert perf_system().price_usd == pytest.approx(7955)
