"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestSimulate:
    def test_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "ds"
        assert main(["simulate", str(out), "--reads", "60"]) == 0
        assert (out / "references.fasta").exists()
        assert (out / "reads.fastq").exists()
        truth = json.loads((out / "truth.json").read_text())
        assert truth and all(float(v) > 0 for v in truth.values())

    def test_diversity_choices(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["simulate", "x", "--diversity", "CAMI-X"])


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "ds"
    main(["simulate", str(out), "--reads", "120", "--seed", "5"])
    return out


class TestAnalyze:
    @pytest.mark.parametrize("tool", ["megis", "metalign", "kraken2"])
    def test_tools_run(self, dataset, tool, capsys):
        code = main([
            "analyze", str(dataset / "references.fasta"),
            str(dataset / "reads.fastq"), "--tool", tool,
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert f"tool: {tool}" in output
        assert "taxid" in output

    def test_statistical_abundance(self, dataset, capsys):
        code = main([
            "analyze", str(dataset / "references.fasta"),
            str(dataset / "reads.fastq"), "--abundance", "statistical",
        ])
        assert code == 0
        assert "species called" in capsys.readouterr().out

    def test_megis_matches_metalign_output(self, dataset, capsys):
        main(["analyze", str(dataset / "references.fasta"),
              str(dataset / "reads.fastq"), "--tool", "megis"])
        megis_out = capsys.readouterr().out.splitlines()[1:]
        main(["analyze", str(dataset / "references.fasta"),
              str(dataset / "reads.fastq"), "--tool", "metalign"])
        metalign_out = capsys.readouterr().out.splitlines()[1:]
        assert megis_out == metalign_out


class TestIndexLifecycle:
    @pytest.fixture(scope="class")
    def index_path(self, dataset, tmp_path_factory):
        path = tmp_path_factory.mktemp("idx") / "world.megis"
        assert main(["index", "build", str(dataset / "references.fasta"),
                     str(path), "--shards", "2"]) == 0
        return path

    def test_build_reports_stats(self, dataset, tmp_path, capsys):
        path = tmp_path / "out.megis"
        assert main(["index", "build", str(dataset / "references.fasta"),
                     str(path)]) == 0
        output = capsys.readouterr().out
        assert "wrote" in output and "db k-mers" in output
        assert path.exists()

    def test_analyze_from_index_matches_rebuild(self, dataset, index_path, capsys):
        main(["analyze", str(dataset / "reads.fastq"),
              "--index", str(index_path), "--ssds", "2"])
        from_index = capsys.readouterr().out
        main(["analyze", str(dataset / "references.fasta"),
              str(dataset / "reads.fastq")])
        rebuilt = capsys.readouterr().out
        assert from_index == rebuilt

    def test_metalign_from_index(self, dataset, index_path, capsys):
        code = main(["analyze", str(dataset / "reads.fastq"),
                     "--index", str(index_path), "--tool", "metalign"])
        assert code == 0
        assert "tool: metalign" in capsys.readouterr().out

    def test_mapping_without_references_fails_cleanly(self, dataset, tmp_path,
                                                      capsys):
        path = tmp_path / "slim.megis"
        main(["index", "build", str(dataset / "references.fasta"), str(path),
              "--no-references"])
        capsys.readouterr()
        code = main(["analyze", str(dataset / "reads.fastq"),
                     "--index", str(path)])
        assert code == 2
        assert "statistical" in capsys.readouterr().err
        assert main(["analyze", str(dataset / "reads.fastq"), "--index",
                     str(path), "--abundance", "statistical"]) == 0

    def test_kraken2_with_index_rejected(self, dataset, index_path, capsys):
        code = main(["analyze", str(dataset / "reads.fastq"),
                     "--index", str(index_path), "--tool", "kraken2"])
        assert code == 2
        assert "--index" in capsys.readouterr().err

    def test_analyze_without_reads_errors(self, dataset, capsys):
        assert main(["analyze", str(dataset / "references.fasta")]) == 2
        assert "READS" in capsys.readouterr().err


class TestServe:
    @pytest.fixture(scope="class")
    def index_path(self, dataset, tmp_path_factory):
        path = tmp_path_factory.mktemp("serve") / "world.megis"
        assert main(["index", "build", str(dataset / "references.fasta"),
                     str(path), "--shards", "2"]) == 0
        return path

    @pytest.fixture(scope="class")
    def sample_chunks(self, dataset):
        from repro.sequences.io import reads_from_fastq

        reads = reads_from_fastq((dataset / "reads.fastq").read_text())
        size = len(reads) // 3
        return [reads[i * size:(i + 1) * size] for i in range(3)]

    def _serve(self, monkeypatch, capsys, index_path, lines, *flags):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        code = main(["serve", "--index", str(index_path), *flags])
        captured = capsys.readouterr()
        return code, [json.loads(line) for line in
                      captured.out.strip().splitlines()], captured.err

    def test_jsonl_roundtrip_matches_analyze(self, monkeypatch, capsys,
                                             index_path, sample_chunks):
        """Served results == serial session.analyze; --strict-order
        restores input order however batches coalesce."""
        lines = "".join(
            json.dumps({"schema": 1, "id": f"s{i}",
                        "reads": [r.sequence for r in chunk]}) + "\n"
            for i, chunk in enumerate(sample_chunks)
        )
        code, records, err = self._serve(
            monkeypatch, capsys, index_path, lines,
            "--workers", "2", "--backend", "numpy", "--mmap",
            "--executor", "threads:2", "--strict-order",
        )
        assert code == 0
        assert [r["id"] for r in records] == ["s0", "s1", "s2"]
        assert "served 3 samples" in err
        assert "peak queued" in err

        from repro.megis.index import MegisIndex
        from repro.megis.session import AnalysisSession, MegisConfig

        session = AnalysisSession(MegisIndex.open(index_path),
                                  MegisConfig(backend="numpy"))
        for record, chunk in zip(records, sample_chunks):
            expected = session.analyze(chunk)
            assert record["schema"] == 1
            assert record["n_reads"] == len(chunk)
            assert record["candidates"] == sorted(expected.candidates)
            assert record["profile"] == {
                str(t): f
                for t, f in sorted(expected.profile.fractions.items())
            }
            assert record["queue_wait_ms"] >= 0
            assert record["latency_ms"] >= record["queue_wait_ms"]

    def test_malformed_lines_become_error_records(self, monkeypatch, capsys,
                                                  index_path, sample_chunks):
        """Each malformed line yields one structured error object; errors
        stream out as parsed, so match on content, not position."""
        lines = "\n".join([
            "this is not json",
            json.dumps({"schema": 1, "no_reads_key": True}),
            json.dumps({"schema": 1, "id": "ok",
                        "reads": [r.sequence for r in sample_chunks[0]]}),
            json.dumps({"schema": 1, "id": "bad", "reads": [1, 2, 3]}),
            json.dumps({"id": "unversioned", "reads": []}),
            json.dumps({"schema": 99, "id": "future", "reads": []}),
        ]) + "\n"
        code, records, _ = self._serve(monkeypatch, capsys, index_path, lines)
        assert code == 0
        assert all(r["schema"] == 1 for r in records)
        by_line = {r["line"]: r for r in records if "error" in r}
        assert set(by_line) == {1, 2, 4, 5, 6}
        assert "bad JSON" in by_line[1]["error"]
        assert "expected an object" in by_line[2]["error"]
        assert "sequence strings" in by_line[4]["error"]
        assert by_line[4]["id"] == "bad"
        assert "missing 'schema'" in by_line[5]["error"]
        assert by_line[5]["id"] == "unversioned"
        assert "unsupported schema 99" in by_line[6]["error"]
        ok = next(r for r in records if "error" not in r)
        assert ok["id"] == "ok" and "candidates" in ok

    def test_duplicate_ids_rejected_on_the_wire(self, monkeypatch, capsys,
                                                index_path, sample_chunks):
        reads = [r.sequence for r in sample_chunks[0]]
        lines = "".join([
            json.dumps({"schema": 1, "id": "twin", "reads": reads}) + "\n",
            "\n",  # blank lines are skipped, not errors
            json.dumps({"schema": 1, "id": "twin", "reads": reads}) + "\n",
        ])
        code, records, err = self._serve(monkeypatch, capsys, index_path,
                                         lines)
        assert code == 0
        assert len(records) == 2
        errors = [r for r in records if "error" in r]
        assert len(errors) == 1
        assert "duplicate id 'twin'" in errors[0]["error"]
        assert errors[0]["line"] == 3
        assert "served 1 samples" in err

    def test_deadline_zero_expires_every_request(self, monkeypatch, capsys,
                                                 index_path, sample_chunks):
        """--deadline-ms 0: claim time is strictly after enqueue, so every
        request fails with a structured deadline error."""
        lines = json.dumps(
            {"schema": 1, "id": "late",
             "reads": [r.sequence for r in sample_chunks[0]]}
        ) + "\n"
        code, records, err = self._serve(monkeypatch, capsys, index_path,
                                         lines, "--deadline-ms", "0")
        assert code == 0
        assert records[0]["id"] == "late"
        assert "deadline" in records[0]["error"]
        assert "1 past deadline" in err

    def test_bounded_queue_reports_peak_at_bound(self, monkeypatch, capsys,
                                                 index_path, sample_chunks):
        """--max-queue N: stdin reading blocks when full, so the queue
        high-water mark never exceeds the configured bound."""
        lines = "".join(
            json.dumps({"schema": 1, "id": i,
                        "reads": [r.sequence for r in sample_chunks[0]]})
            + "\n"
            for i in range(6)
        )
        code, records, err = self._serve(monkeypatch, capsys, index_path,
                                         lines, "--max-queue", "2",
                                         "--max-batch", "1")
        assert code == 0
        assert len(records) == 6
        assert "peak queued 2" in err

    def test_submit_failure_is_error_record_not_fatal(self, monkeypatch,
                                                      capsys, index_path,
                                                      sample_chunks):
        """A submit-side exception for one line becomes one structured
        error record; later lines still serve and the summary prints."""
        from repro.megis.service import AnalysisService

        real_submit = AnalysisService.submit

        def failing_submit(self, sample, **kwargs):
            if kwargs.get("tag", (None,))[0] == "boom":
                raise RuntimeError("disk on fire")
            return real_submit(self, sample, **kwargs)

        monkeypatch.setattr(AnalysisService, "submit", failing_submit)
        reads = [r.sequence for r in sample_chunks[0]]
        lines = "".join(
            json.dumps({"schema": 1, "id": rid, "reads": reads}) + "\n"
            for rid in ("ok1", "boom", "ok2")
        )
        code, records, err = self._serve(monkeypatch, capsys, index_path,
                                         lines)
        assert code == 0
        by_id = {r["id"]: r for r in records}
        assert "submit failed: disk on fire" in by_id["boom"]["error"]
        assert by_id["boom"]["line"] == 2
        assert "candidates" in by_id["ok1"]
        assert "candidates" in by_id["ok2"]
        assert "served 2 samples" in err

    def test_dead_consumer_unblocks_backpressured_reader(self, monkeypatch,
                                                         capsys, index_path,
                                                         sample_chunks):
        """stdout closing mid-stream while the reader is parked on
        --max-queue backpressure must not deadlock the drain: accepted
        samples finish, the stderr summary prints, exit status is 1."""
        import io
        import time

        from repro.megis.session import AnalysisSession

        real_analyze = AnalysisSession.analyze

        def slow_analyze(self, reads, *args, **kwargs):
            time.sleep(0.15)  # hold the queue full while stdout dies
            return real_analyze(self, reads, *args, **kwargs)

        monkeypatch.setattr(AnalysisSession, "analyze", slow_analyze)

        class DyingStdout(io.TextIOBase):
            """Accepts one full line, then raises like a closed pipe."""

            def __init__(self):
                self.lines = []
                self._buffer = ""

            def write(self, text):
                if self.lines:
                    raise BrokenPipeError(32, "Broken pipe")
                self._buffer += text
                if "\n" in self._buffer:
                    line, self._buffer = self._buffer.split("\n", 1)
                    self.lines.append(line)
                return len(text)

            def flush(self):
                if self.lines and not self._buffer:
                    return
                if self.lines:
                    raise BrokenPipeError(32, "Broken pipe")

        reads = [r.sequence for r in sample_chunks[0]]
        lines = "".join(
            json.dumps({"schema": 1, "id": i, "reads": reads}) + "\n"
            for i in range(6)
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        fake_stdout = DyingStdout()
        monkeypatch.setattr("sys.stdout", fake_stdout)
        code = main(["serve", "--index", str(index_path),
                     "--max-queue", "1", "--max-batch", "1",
                     "--workers", "1"])
        err = capsys.readouterr().err
        assert code == 1
        assert "output consumer went away, stopped early" in err
        assert "served" in err  # the summary still prints
        assert len(fake_stdout.lines) == 1
        assert json.loads(fake_stdout.lines[0])["id"] == 0

    def test_help_documents_malformed_input(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        text = capsys.readouterr().out
        assert "Malformed input never stops the stream" in text
        assert "--max-line-bytes" in text
        assert '"schema": 1' in text

    def test_statistical_without_references(self, monkeypatch, capsys, dataset,
                                            tmp_path, sample_chunks):
        slim = tmp_path / "slim.megis"
        main(["index", "build", str(dataset / "references.fasta"), str(slim),
              "--no-references"])
        capsys.readouterr()
        code = main(["serve", "--index", str(slim)])
        assert code == 2
        assert "statistical" in capsys.readouterr().err
        lines = json.dumps(
            {"schema": 1, "id": 1,
             "reads": [r.sequence for r in sample_chunks[0]]}
        ) + "\n"
        code, records, _ = self._serve(monkeypatch, capsys, slim, lines,
                                       "--abundance", "statistical")
        assert code == 0
        assert records[0]["candidates"]


class TestParseServeLine:
    """Edge-case coverage for the wire parser itself."""

    def _parse(self, line, line_no=1, **kwargs):
        from repro.cli import _parse_serve_line

        return _parse_serve_line(line, line_no, **kwargs)

    def test_accepts_bytes_and_str(self):
        payload = {"schema": 1, "id": "x", "reads": ["ACGT"]}
        for line in (json.dumps(payload), json.dumps(payload).encode()):
            request_id, reads, error = self._parse(line)
            assert error is None
            assert (request_id, reads) == ("x", ["ACGT"])

    def test_non_utf8_bytes_are_an_error_not_a_crash(self):
        request_id, reads, error = self._parse(b'{"id": "\xff\xfe", "reads": []}',
                                               line_no=7)
        assert reads is None
        assert request_id == 7
        assert "not valid UTF-8" in error

    def test_oversized_payload_rejected_without_parsing(self):
        line = json.dumps({"schema": 1, "id": "big", "reads": ["A" * 1000]})
        request_id, reads, error = self._parse(line, line_no=3, max_bytes=64)
        assert reads is None
        assert request_id == 3
        assert "line too long" in error and "--max-line-bytes 64" in error
        # Under the limit the same line parses fine.
        _, reads, error = self._parse(line, max_bytes=len(line.encode()))
        assert error is None and len(reads) == 1

    def test_duplicate_id_rejected_second_time(self):
        seen = set()
        line = json.dumps({"schema": 1, "id": 9, "reads": ["ACGT"]})
        _, reads, error = self._parse(line, seen_ids=seen)
        assert error is None and reads == ["ACGT"]
        request_id, reads, error = self._parse(line, line_no=2, seen_ids=seen)
        assert reads is None and request_id == 9
        assert "duplicate id 9" in error

    def test_missing_id_defaults_to_line_number(self):
        seen = set()
        request_id, reads, error = self._parse(
            json.dumps({"schema": 1, "reads": ["ACGT"]}), line_no=5,
            seen_ids=seen)
        assert error is None and request_id == 5
        assert seen == {5}

    def test_non_scalar_id_rejected(self):
        request_id, reads, error = self._parse(
            json.dumps({"id": {"nested": 1}, "reads": ["ACGT"]}), line_no=2)
        assert reads is None and request_id == 2
        assert "'id' must be a JSON scalar" in error

    def test_non_utf8_stdin_serves_error_record(self, monkeypatch, capsys,
                                                tmp_path):
        """End to end: a binary-garbage line becomes an error object and
        later valid lines still get served."""
        import io

        from repro.workloads.cami import CamiDiversity, make_cami_sample
        from repro.sequences.io import references_to_fasta

        sample = make_cami_sample(CamiDiversity.LOW, n_reads=40, seed=3)
        fasta = tmp_path / "refs.fasta"
        fasta.write_text(references_to_fasta(sample.references))
        index_path = tmp_path / "w.megis"
        assert main(["index", "build", str(fasta), str(index_path)]) == 0
        capsys.readouterr()
        good = json.dumps({"schema": 1, "id": "ok", "reads":
                           [r.sequence for r in sample.reads[:10]]})
        raw = b'{"id": "\xff", "reads": []}\n' + good.encode() + b"\n"
        monkeypatch.setattr("sys.stdin",
                            io.TextIOWrapper(io.BytesIO(raw), encoding="utf-8"))
        assert main(["serve", "--index", str(index_path)]) == 0
        records = [json.loads(line) for line in
                   capsys.readouterr().out.strip().splitlines()]
        by_id = {r["id"]: r for r in records}
        assert "not valid UTF-8" in by_id[1]["error"]
        assert "candidates" in by_id["ok"]


class TestValidate:
    def test_validate_passes(self, capsys):
        assert main(["validate"]) == 0
        output = capsys.readouterr().out
        assert "targets in band" in output
        assert "OUT OF BAND" not in output


class TestModel:
    def test_model_prints_all_configs(self, capsys):
        assert main(["model", "--ssd", "SSD-P", "--sample", "CAMI-L"]) == 0
        output = capsys.readouterr().out
        for config in ("P-Opt", "A-Opt", "Sieve", "MS-NOL", "MS-CC", "MS"):
            assert config in output

    def test_ms_speedup_is_one(self, capsys):
        main(["model"])
        output = capsys.readouterr().out
        ms_line = next(line for line in output.splitlines() if line.strip().startswith("MS "))
        assert "1.00x" in ms_line
