"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestSimulate:
    def test_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "ds"
        assert main(["simulate", str(out), "--reads", "60"]) == 0
        assert (out / "references.fasta").exists()
        assert (out / "reads.fastq").exists()
        truth = json.loads((out / "truth.json").read_text())
        assert truth and all(float(v) > 0 for v in truth.values())

    def test_diversity_choices(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["simulate", "x", "--diversity", "CAMI-X"])


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "ds"
    main(["simulate", str(out), "--reads", "120", "--seed", "5"])
    return out


class TestAnalyze:
    @pytest.mark.parametrize("tool", ["megis", "metalign", "kraken2"])
    def test_tools_run(self, dataset, tool, capsys):
        code = main([
            "analyze", str(dataset / "references.fasta"),
            str(dataset / "reads.fastq"), "--tool", tool,
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert f"tool: {tool}" in output
        assert "taxid" in output

    def test_statistical_abundance(self, dataset, capsys):
        code = main([
            "analyze", str(dataset / "references.fasta"),
            str(dataset / "reads.fastq"), "--abundance", "statistical",
        ])
        assert code == 0
        assert "species called" in capsys.readouterr().out

    def test_megis_matches_metalign_output(self, dataset, capsys):
        main(["analyze", str(dataset / "references.fasta"),
              str(dataset / "reads.fastq"), "--tool", "megis"])
        megis_out = capsys.readouterr().out.splitlines()[1:]
        main(["analyze", str(dataset / "references.fasta"),
              str(dataset / "reads.fastq"), "--tool", "metalign"])
        metalign_out = capsys.readouterr().out.splitlines()[1:]
        assert megis_out == metalign_out


class TestIndexLifecycle:
    @pytest.fixture(scope="class")
    def index_path(self, dataset, tmp_path_factory):
        path = tmp_path_factory.mktemp("idx") / "world.megis"
        assert main(["index", "build", str(dataset / "references.fasta"),
                     str(path), "--shards", "2"]) == 0
        return path

    def test_build_reports_stats(self, dataset, tmp_path, capsys):
        path = tmp_path / "out.megis"
        assert main(["index", "build", str(dataset / "references.fasta"),
                     str(path)]) == 0
        output = capsys.readouterr().out
        assert "wrote" in output and "db k-mers" in output
        assert path.exists()

    def test_analyze_from_index_matches_rebuild(self, dataset, index_path, capsys):
        main(["analyze", str(dataset / "reads.fastq"),
              "--index", str(index_path), "--ssds", "2"])
        from_index = capsys.readouterr().out
        main(["analyze", str(dataset / "references.fasta"),
              str(dataset / "reads.fastq")])
        rebuilt = capsys.readouterr().out
        assert from_index == rebuilt

    def test_metalign_from_index(self, dataset, index_path, capsys):
        code = main(["analyze", str(dataset / "reads.fastq"),
                     "--index", str(index_path), "--tool", "metalign"])
        assert code == 0
        assert "tool: metalign" in capsys.readouterr().out

    def test_mapping_without_references_fails_cleanly(self, dataset, tmp_path,
                                                      capsys):
        path = tmp_path / "slim.megis"
        main(["index", "build", str(dataset / "references.fasta"), str(path),
              "--no-references"])
        capsys.readouterr()
        code = main(["analyze", str(dataset / "reads.fastq"),
                     "--index", str(path)])
        assert code == 2
        assert "statistical" in capsys.readouterr().err
        assert main(["analyze", str(dataset / "reads.fastq"), "--index",
                     str(path), "--abundance", "statistical"]) == 0

    def test_kraken2_with_index_rejected(self, dataset, index_path, capsys):
        code = main(["analyze", str(dataset / "reads.fastq"),
                     "--index", str(index_path), "--tool", "kraken2"])
        assert code == 2
        assert "--index" in capsys.readouterr().err

    def test_analyze_without_reads_errors(self, dataset, capsys):
        assert main(["analyze", str(dataset / "references.fasta")]) == 2
        assert "READS" in capsys.readouterr().err


class TestServe:
    @pytest.fixture(scope="class")
    def index_path(self, dataset, tmp_path_factory):
        path = tmp_path_factory.mktemp("serve") / "world.megis"
        assert main(["index", "build", str(dataset / "references.fasta"),
                     str(path), "--shards", "2"]) == 0
        return path

    @pytest.fixture(scope="class")
    def sample_chunks(self, dataset):
        from repro.sequences.io import reads_from_fastq

        reads = reads_from_fastq((dataset / "reads.fastq").read_text())
        size = len(reads) // 3
        return [reads[i * size:(i + 1) * size] for i in range(3)]

    def _serve(self, monkeypatch, capsys, index_path, lines, *flags):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        code = main(["serve", "--index", str(index_path), *flags])
        captured = capsys.readouterr()
        return code, [json.loads(line) for line in
                      captured.out.strip().splitlines()], captured.err

    def test_jsonl_roundtrip_matches_analyze(self, monkeypatch, capsys,
                                             index_path, sample_chunks):
        """Served results == serial session.analyze, in input order."""
        lines = "".join(
            json.dumps({"id": f"s{i}",
                        "reads": [r.sequence for r in chunk]}) + "\n"
            for i, chunk in enumerate(sample_chunks)
        )
        code, records, err = self._serve(
            monkeypatch, capsys, index_path, lines,
            "--workers", "2", "--backend", "numpy", "--mmap",
            "--executor", "threads:2",
        )
        assert code == 0
        assert [r["id"] for r in records] == ["s0", "s1", "s2"]
        assert "served 3 samples" in err

        from repro.megis.index import MegisIndex
        from repro.megis.session import AnalysisSession, MegisConfig

        session = AnalysisSession(MegisIndex.open(index_path),
                                  MegisConfig(backend="numpy"))
        for record, chunk in zip(records, sample_chunks):
            expected = session.analyze(chunk)
            assert record["n_reads"] == len(chunk)
            assert record["candidates"] == sorted(expected.candidates)
            assert record["profile"] == {
                str(t): f
                for t, f in sorted(expected.profile.fractions.items())
            }

    def test_malformed_lines_become_error_records(self, monkeypatch, capsys,
                                                  index_path, sample_chunks):
        lines = "\n".join([
            "this is not json",
            json.dumps({"no_reads_key": True}),
            json.dumps({"id": "ok",
                        "reads": [r.sequence for r in sample_chunks[0]]}),
            json.dumps({"id": "bad", "reads": [1, 2, 3]}),
        ]) + "\n"
        code, records, _ = self._serve(monkeypatch, capsys, index_path, lines)
        assert code == 0
        assert "bad JSON" in records[0]["error"]
        assert "expected an object" in records[1]["error"]
        assert records[2]["id"] == "ok" and "candidates" in records[2]
        assert "sequence strings" in records[3]["error"]

    def test_statistical_without_references(self, monkeypatch, capsys, dataset,
                                            tmp_path, sample_chunks):
        slim = tmp_path / "slim.megis"
        main(["index", "build", str(dataset / "references.fasta"), str(slim),
              "--no-references"])
        capsys.readouterr()
        code = main(["serve", "--index", str(slim)])
        assert code == 2
        assert "statistical" in capsys.readouterr().err
        lines = json.dumps(
            {"id": 1, "reads": [r.sequence for r in sample_chunks[0]]}
        ) + "\n"
        code, records, _ = self._serve(monkeypatch, capsys, slim, lines,
                                       "--abundance", "statistical")
        assert code == 0
        assert records[0]["candidates"]


class TestValidate:
    def test_validate_passes(self, capsys):
        assert main(["validate"]) == 0
        output = capsys.readouterr().out
        assert "targets in band" in output
        assert "OUT OF BAND" not in output


class TestModel:
    def test_model_prints_all_configs(self, capsys):
        assert main(["model", "--ssd", "SSD-P", "--sample", "CAMI-L"]) == 0
        output = capsys.readouterr().out
        for config in ("P-Opt", "A-Opt", "Sieve", "MS-NOL", "MS-CC", "MS"):
            assert config in output

    def test_ms_speedup_is_one(self, capsys):
        main(["model"])
        output = capsys.readouterr().out
        ms_line = next(line for line in output.splitlines() if line.strip().startswith("MS "))
        assert "1.00x" in ms_line
