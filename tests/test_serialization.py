"""Tests for the on-flash database format and the offline builder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.databases.builder import DatabaseBuilder, place_bundle
from repro.databases.serialization import (
    SerializationError,
    byte_order_matches_kmer_order,
    deserialize_database,
    kmer_record_bytes,
    payload_pages,
    serialize_database,
)
from repro.databases.sorted_db import SortedKmerDatabase
from repro.ssd.config import ssd_c


class TestSerialization:
    def test_roundtrip_with_owners(self, sorted_db):
        payload = serialize_database(sorted_db, with_owners=True)
        loaded = deserialize_database(payload)
        assert loaded.k == sorted_db.k
        assert loaded.kmers == sorted_db.kmers
        for kmer in sorted_db.kmers[:50]:
            assert loaded.owners_of(kmer) == sorted_db.owners_of(kmer)

    def test_roundtrip_without_owners(self, sorted_db):
        payload = serialize_database(sorted_db, with_owners=False)
        loaded = deserialize_database(payload)
        assert loaded.kmers == sorted_db.kmers

    def test_owner_payload_larger(self, sorted_db):
        assert len(serialize_database(sorted_db, with_owners=True)) > len(
            serialize_database(sorted_db, with_owners=False)
        )

    def test_byte_order_property(self, sorted_db):
        # The load-bearing invariant: byte-wise order == k-mer order.
        assert byte_order_matches_kmer_order(sorted_db)

    def test_record_width(self):
        assert kmer_record_bytes(20) == 5
        assert kmer_record_bytes(60) == 15
        assert kmer_record_bytes(4) == 1

    def test_bad_magic(self, sorted_db):
        payload = bytearray(serialize_database(sorted_db))
        payload[0] = 0
        with pytest.raises(SerializationError):
            deserialize_database(bytes(payload))

    def test_truncated_payload(self, sorted_db):
        payload = serialize_database(sorted_db)
        with pytest.raises(SerializationError):
            deserialize_database(payload[:-3])

    def test_trailing_garbage(self, sorted_db):
        payload = serialize_database(sorted_db) + b"xx"
        with pytest.raises(SerializationError):
            deserialize_database(payload)

    def test_short_header(self):
        with pytest.raises(SerializationError):
            deserialize_database(b"abc")

    def test_payload_pages(self):
        assert payload_pages(b"x" * 10000, 4096) == (2, 1808)
        with pytest.raises(ValueError):
            payload_pages(b"", 0)

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 24) - 1),
                    min_size=0, max_size=40, unique=True))
    @settings(max_examples=25)
    def test_roundtrip_property(self, raw):
        kmers = sorted(raw)
        db = SortedKmerDatabase(12, kmers, [frozenset({1})] * len(kmers))
        loaded = deserialize_database(serialize_database(db))
        assert loaded.kmers == kmers


class TestCsrOwnerLayout:
    """The CSR owner columns are the persisted format and the cached view."""

    def test_flags_mark_csr(self, sorted_db):
        import struct

        payload = serialize_database(sorted_db)
        _, _, flags, _ = struct.unpack_from("<8sHHI", payload, 0)
        assert flags == 3  # FLAG_OWNERS | FLAG_CSR

    def test_interleaved_layout_roundtrips(self, sorted_db):
        payload = serialize_database(sorted_db, layout="interleaved")
        loaded = deserialize_database(payload)
        assert loaded.kmers == sorted_db.kmers
        for kmer in sorted_db.kmers[:50]:
            assert loaded.owners_of(kmer) == sorted_db.owners_of(kmer)

    def test_layouts_agree(self, sorted_db):
        csr = deserialize_database(serialize_database(sorted_db, layout="csr"))
        inter = deserialize_database(
            serialize_database(sorted_db, layout="interleaved")
        )
        assert csr.kmers == inter.kmers
        assert all(
            csr.owners_of(x) == inter.owners_of(x) for x in sorted_db.kmers[:50]
        )

    def test_unknown_layout_rejected(self, sorted_db):
        with pytest.raises(ValueError):
            serialize_database(sorted_db, layout="columnar")

    def test_deserialized_csr_cache_attached(self, sorted_db):
        loaded = deserialize_database(serialize_database(sorted_db))
        assert loaded._owner_columns is not None
        taxids, offsets = loaded.owner_columns()
        want_taxids, want_offsets = sorted_db.owner_columns()
        assert taxids.tolist() == want_taxids.tolist()
        assert offsets.tolist() == want_offsets.tolist()

    def test_owner_columns_match_owners_of(self, sorted_db):
        taxids, offsets = sorted_db.owner_columns()
        assert len(offsets) == len(sorted_db) + 1
        for i, kmer in enumerate(sorted_db.kmers[:80]):
            row = taxids[offsets[i] : offsets[i + 1]].tolist()
            assert row == sorted(sorted_db.owners_of(kmer))
            assert frozenset(row) == sorted_db.owners_of(kmer)

    def test_slice_shares_owner_columns(self, sorted_db):
        parent_taxids, parent_offsets = sorted_db.owner_columns()
        shard = sorted_db.slice(10, 40)
        taxids, offsets = shard.owner_columns()
        assert int(offsets[0]) == 0
        assert taxids.base is not None  # zero-copy view of the parent column
        for i, kmer in enumerate(shard.kmers):
            assert taxids[offsets[i] : offsets[i + 1]].tolist() == sorted(
                sorted_db.owners_of(kmer)
            )

    def test_csr_roundtrip_beyond_255_owners(self):
        # The legacy interleaved layout caps owners per k-mer at u8; the
        # CSR offsets column removes the cap.
        owners = [frozenset(range(1, 300))]
        db = SortedKmerDatabase(12, [7], owners)
        with pytest.raises(SerializationError):
            serialize_database(db, layout="interleaved")
        loaded = deserialize_database(serialize_database(db))
        assert loaded.owners_of(7) == owners[0]

    def test_csr_rejects_taxids_beyond_u32(self):
        # A taxID that does not fit u32 must fail loudly, not wrap modulo
        # 2**32 into a different species.
        db = SortedKmerDatabase(12, [7], [frozenset({1 << 33})])
        with pytest.raises(SerializationError):
            serialize_database(db)

    def test_csr_truncated_offsets(self, sorted_db):
        payload = serialize_database(sorted_db)
        # Cut inside the offsets column: header + kmer records + a few bytes.
        cut = 16 + kmer_record_bytes(sorted_db.k) * len(sorted_db) + 4
        with pytest.raises(SerializationError):
            deserialize_database(payload[:cut])

    def test_vectorized_parse_attaches_column(self, sorted_db):
        # 2k <= 64: the k-mer records parse vectorized and the uint64
        # column is attached as the cache (no build on first use).
        loaded = deserialize_database(serialize_database(sorted_db))
        assert loaded._column is not None
        assert loaded.column_builds == 0
        assert loaded.column().tolist() == sorted_db.kmers

    def test_wide_k_roundtrip_falls_back(self):
        # The paper's k = 60 (120-bit k-mers) takes the per-record parse;
        # the ndarray column is then built on demand with object dtype.
        kmers = [3, 1 << 100, (1 << 119) + 5]
        db = SortedKmerDatabase(60, kmers, [frozenset({i})for i in range(3)])
        loaded = deserialize_database(serialize_database(db))
        assert loaded.kmers == kmers
        assert loaded._column is None
        assert loaded.column().dtype == object
        for kmer in kmers:
            assert loaded.owners_of(kmer) == db.owners_of(kmer)


class TestDatabaseBuilder:
    @pytest.fixture(scope="class")
    def bundle(self, references):
        return DatabaseBuilder(k=20, smaller_ks=(12, 8)).build(references)

    def test_bundle_consistency(self, bundle):
        assert bundle.sorted_db.k == bundle.sketch.k_max == 20
        assert bundle.kss.k_max == 20
        assert set(bundle.taxonomy.species()) == set(
            bundle.references.species_taxids
        )

    def test_flash_image_parses(self, bundle):
        loaded = deserialize_database(bundle.flash_image)
        assert loaded.kmers == bundle.sorted_db.kmers

    def test_sizes_reported(self, bundle):
        sizes = bundle.sizes()
        assert sizes["flash_image"] > 0
        assert sizes["kss"] < sizes["flat_sketch"]

    def test_pipelines_work_from_bundle(self, bundle, sample):
        from repro.megis.pipeline import MegisPipeline
        from repro.tools.metalign import MetalignPipeline

        megis = MegisPipeline(bundle.sorted_db, bundle.sketch, bundle.references)
        metalign = MetalignPipeline(bundle.sorted_db, bundle.sketch, bundle.references)
        ours = megis.analyze(sample.reads)
        theirs = metalign.analyze(sample.reads)
        assert ours.profile.fractions == theirs.profile.fractions

    def test_build_from_fasta(self, references):
        from repro.sequences.io import references_to_fasta

        bundle = DatabaseBuilder(k=16, smaller_ks=(8,)).build_from_fasta(
            references_to_fasta(references)
        )
        assert len(bundle.sorted_db) > 0

    def test_invalid_smaller_ks(self):
        with pytest.raises(ValueError):
            DatabaseBuilder(k=10, smaller_ks=(12,))

    def test_placement_uses_real_size(self, bundle):
        layout = place_bundle(bundle, ssd_c().geometry)
        assert layout.size_bytes == len(bundle.flash_image)
        assert layout.n_pages >= 1
