"""Integration tests: every experiment runs and reproduces the paper's shape."""

import pytest

from repro.experiments.runner import REGISTRY, ExperimentResult, get_experiment


class TestRunnerInfrastructure:
    def test_registry_complete(self):
        expected = {
            "fig03", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
            "fig18", "fig19", "fig20", "fig21", "table2", "energy",
            "accuracy", "kss_size", "ftl_metadata", "index_lifecycle",
            "serving_throughput", "ablation_buckets", "ablation_sketch",
            "backend_scaling", "isp_management", "overprovisioning",
            "qos_latency", "gateway_qos", "cluster_scaling", "overlap_report",
            "random_read_latency",
        }
        assert set(REGISTRY) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_result_row_validation(self):
        result = ExperimentResult("x", "t", columns=["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(a=1)

    def test_format_table_renders(self):
        result = ExperimentResult("x", "t", columns=["a"], paper_reference="ref")
        result.add_row(a=1.2345)
        text = result.format_table()
        assert "x" in text and "1.23" in text and "ref" in text


@pytest.fixture(scope="module")
def results():
    """Run every experiment once (accuracy is the slow one)."""
    return {name: get_experiment(name)() for name in sorted(REGISTRY)}


class TestAllExperimentsRun:
    def test_every_experiment_has_rows(self, results):
        for name, result in results.items():
            assert result.rows, f"{name} produced no rows"
            for row in result.rows:
                assert set(result.columns) <= set(row)


class TestPaperShapes:
    def test_fig03_io_hurts_more_on_ssd_c(self, results):
        for row in results["fig03"].rows:
            assert row["SSD-C"] < row["SSD-P"] <= 1.0

    def test_fig03_bigger_db_bigger_gap(self, results):
        rows = results["fig03"].rows
        by_key = {(r["tool"], r["db_scale"]): r for r in rows}
        assert by_key[("R-Qry", "2x")]["SSD-C"] < by_key[("R-Qry", "1x")]["SSD-C"]

    def test_fig12_ms_wins_everywhere(self, results):
        for row in results["fig12"].rows:
            for config in ("P-Opt", "A-Opt", "A-Opt+KSS", "Ext-MS", "MS-NOL", "MS-CC"):
                assert row["MS"] >= row[config]

    def test_fig12_gmean_bands(self, results):
        gmeans = {r["ssd"]: r for r in results["fig12"].rows if r["sample"] == "GMean"}
        assert 4.0 < gmeans["SSD-C"]["MS"] < 8.0  # paper ~5.9 over P-Opt
        assert 2.0 < gmeans["SSD-P"]["MS"] < 7.0

    def test_fig13_overlap_hides_sorting(self, results):
        rows = {(r["ssd"], r["config"]): r for r in results["fig13"].rows}
        for ssd in ("SSD-C", "SSD-P"):
            assert rows[(ssd, "MS")]["total"] < rows[(ssd, "MS-NOL")]["total"]
            assert rows[(ssd, "A-Opt+KSS")]["taxid"] < rows[(ssd, "A-Opt")]["taxid"]

    def test_backend_scaling_numpy_wins_at_scale(self, results):
        rows = results["backend_scaling"].rows
        assert [r["db_kmers"] for r in rows] == sorted(r["db_kmers"] for r in rows)
        # Shape only: in the interpreter-overhead regime (largest database)
        # the columnar backend wins.  The hard >=2x ratio floor lives in the
        # benchmark job (benchmarks/test_columnar_dataflow.py), not tier-1,
        # so a noisy shared runner cannot flake the unit suite.
        assert rows[-1]["numpy_ms"] < rows[-1]["python_ms"]

    def test_fig14_speedup_grows_with_db(self, results):
        for ssd in ("SSD-C", "SSD-P"):
            series = [r["MS"] for r in results["fig14"].rows if r["ssd"] == ssd]
            assert series == sorted(series)

    def test_fig15_remains_high_at_8_ssds(self, results):
        for ssd in ("SSD-C", "SSD-P"):
            series = [r["MS"] for r in results["fig15"].rows if r["ssd"] == ssd]
            assert min(series) > 3.0

    def test_fig16_speedup_grows_with_smaller_dram(self, results):
        for ssd in ("SSD-C", "SSD-P"):
            series = [r["MS"] for r in results["fig16"].rows if r["ssd"] == ssd]
            assert series == sorted(series)

    def test_fig17_speedup_grows_with_channels(self, results):
        for ssd in ("SSD-C", "SSD-P"):
            series = [r["MS_vs_A-Opt"] for r in results["fig17"].rows if r["ssd"] == ssd]
            assert series == sorted(series)

    def test_fig18_cheap_megis_beats_rich_baselines(self, results):
        gmean = next(r for r in results["fig18"].rows if r["sample"] == "GMean")
        assert gmean["MS_C"] > 1.0
        assert gmean["P-Opt_C"] < 0.5  # chunked Kraken2 collapses on 64 GB

    def test_fig19_ms_beats_sieve(self, results):
        for row in results["fig19"].rows:
            assert row["ms_speedup"] > 1.0

    def test_fig20_step3_helps(self, results):
        for row in results["fig20"].rows:
            assert row["MS_vs_NIdx"] > 1.2
            assert row["MS"] > row["A-Opt"]

    def test_fig21_speedup_grows_with_samples(self, results):
        for ssd in ("SSD-C", "SSD-P"):
            series = [
                r["MS_vs_P-Opt"] for r in results["fig21"].rows if r["ssd"] == ssd
            ]
            assert series == sorted(series)
            assert series[-1] > 15  # paper: up to 37.2x

    def test_table2_totals(self, results):
        total = next(r for r in results["table2"].rows if r["unit"] == "TOTAL")
        assert total["power_mw"] == pytest.approx(7.658, abs=0.01)
        assert total["area_mm2"] == pytest.approx(0.0358, abs=0.005)

    def test_energy_reductions_in_band(self, results):
        for row in results["energy"].rows:
            assert row["reduction_vs_P"] > 2.5
            assert row["reduction_vs_A"] > 8.0
            assert row["io_red_vs_A"] > 50

    def test_accuracy_megis_matches_aopt(self, results):
        rows = results["accuracy"].rows
        by_key = {(r["sample"], r["tool"]): r for r in rows}
        for sample in ("CAMI-L", "CAMI-M", "CAMI-H"):
            megis = by_key[(sample, "MegIS")]
            aopt = by_key[(sample, "A-Opt")]
            popt = by_key[(sample, "P-Opt")]
            assert megis["matches_aopt"] is True
            assert megis["f1"] == aopt["f1"]
            assert aopt["f1"] > popt["f1"]
            assert aopt["l1_error"] < popt["l1_error"]

    def test_kss_size_orderings(self, results):
        rows = {r["scope"]: r for r in results["kss_size"].rows}
        assert rows["measured"]["flat_over_kss"] > 1.0
        assert rows["paper"]["flat_over_kss"] == pytest.approx(107 / 14, rel=0.01)

    def test_ftl_metadata_reduction(self, results):
        rows = {r["quantity"]: r for r in results["ftl_metadata"].rows}
        assert rows["megis_total"]["fraction_of_baseline"] < 0.001

    def test_ablation_buckets_overlap_improves(self, results):
        rows = results["ablation_buckets"].rows
        modeled = [r["modeled_seconds"] for r in rows]
        assert modeled == sorted(modeled, reverse=True)  # more buckets, faster
        exposed = [r["exposed_sort_fraction"] for r in rows]
        assert exposed[0] == 1.0  # one bucket = no overlap = MS-NOL

    def test_ablation_sketch_tradeoff(self, results):
        rows = results["ablation_sketch"].rows
        sizes = [r["kss_bytes"] for r in rows]
        assert sizes == sorted(sizes)  # denser sketch -> bigger tables
        assert rows[-1]["f1"] >= rows[0]["f1"]  # and no worse sensitivity

    def test_isp_management_claims(self, results):
        rows = {r["quantity"]: r["value"] for r in results["isp_management"].rows}
        assert rows["baseline_write_amplification"] > 1.0
        assert rows["megis_isp_flash_writes"] == 0.0
        key = next(k for k in rows if k.startswith("megis_max_block_reads"))
        assert rows[key] < rows["read_disturb_threshold"]

    def test_random_read_latency_tail_grows_with_load(self, results):
        for ssd in ("SSD-C", "SSD-P"):
            rows = [r for r in results["random_read_latency"].rows
                    if r["ssd"] == ssd]
            p99 = [r["p99_us"] for r in rows]
            assert p99 == sorted(p99)

    def test_qos_latency_reports_both_regimes(self, results):
        """The serving-QoS sweep reports the full window curve per regime;
        the hard monotone-endpoint floors live in benchmarks/test_serving.py
        where the paced wall-clock is allowed to matter."""
        rows = results["qos_latency"].rows
        by_regime = {}
        for row in rows:
            by_regime.setdefault(row["regime"], []).append(row)
        assert set(by_regime) == {"burst", "trickle"}
        for regime_rows in by_regime.values():
            assert [r["window_ms"] for r in regime_rows] == [0.0, 25.0, 90.0]
        # Burst coalescing: any window past the arrival tail serves the
        # whole burst as fewer, wider batches than window=0.
        burst = {r["window_ms"]: r for r in by_regime["burst"]}
        assert burst[90.0]["batches"] < burst[0.0]["batches"]
        assert burst[90.0]["widest"] > burst[0.0]["widest"]
        # Trickle: arrivals never fill a batch, so dispatches stay solo
        # and every request pays the window as pure admission delay.
        trickle = {r["window_ms"]: r for r in by_regime["trickle"]}
        assert all(r["widest"] == 1 for r in trickle.values())
        for row in rows:
            assert row["p99_ms"] >= row["p50_ms"]
            assert 0.0 <= row["slo_attainment"] <= 1.0

    def test_gateway_qos_rate_limit_sheds_flood(self, results):
        """Latency floors live in benchmarks/test_serving.py; tier-1 checks
        the accounting: only the rate-limited period rejects, and every
        request is either served bit-identical (asserted inside the
        experiment) or rejected with a structured frame."""
        rows = {r["scenario"]: r for r in results["gateway_qos"].rows}
        assert set(rows) == {"fair", "flood", "flood+limit"}
        assert [rows[s]["period"] for s in ("fair", "flood", "flood+limit")] \
            == [0, 1, 2]
        assert rows["fair"]["rate_limited"] == 0
        assert rows["flood"]["rate_limited"] == 0
        assert rows["flood+limit"]["rate_limited"] > 0
        # The flood scenarios carry the same offered load; the limiter
        # converts part of it into rejections, never into lost requests.
        offered = rows["flood"]["completed"]
        assert rows["flood+limit"]["completed"] \
            + rows["flood+limit"]["rate_limited"] == offered
        for row in rows.values():
            assert row["clients"] == 4
            assert row["completed"] > 0
            assert row["samples_per_s"] > 0

    def test_overlap_report_tracks_byte_volume_model(self, results):
        rows = {r["n_ssds"]: r for r in results["overlap_report"].rows}
        assert set(rows) == {1, 2, 4}
        assert rows[1]["model_ratio"] == 0.0
        # More shards -> more of the busy time is hideable, in the model
        # and in the paced measurement.
        assert rows[2]["model_ratio"] < rows[4]["model_ratio"]
        for n_ssds in (2, 4):
            row = rows[n_ssds]
            assert row["measured_ratio"] > 0.2
            assert row["measured_ratio"] == pytest.approx(
                row["model_ratio"], abs=0.3
            )
            assert row["max_shard_mb"] < row["total_mb"]

    def test_overprovisioning_degrades_gracefully(self, results):
        rows = results["overprovisioning"].rows
        achieved = [r["achieved_gbps"] for r in rows]
        assert achieved == sorted(achieved, reverse=True)
        # Even under 1:1 management traffic, internal service bandwidth
        # stays far above SSD-C's 0.56 GB/s external rate — the §2.3 point.
        assert achieved[-1] > 1.0
