"""Tests for functional multi-SSD database partitioning (Fig 15's premise).

The range split now lives in the Step-2 backends
(``intersect_sharded``/``intersect_sharded_multi``); these tests pin the
§6.1 claim — sharded Step 2 is bit-identical to single-SSD Step 2 — across
both backends, batched multi-sample mode, and the boundary edge cases
(empty shards, duplicated boundary k-mers, databases smaller than the
shard count).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import PhaseTimings, get_backend
from repro.databases.sorted_db import SortedKmerDatabase
from repro.megis.host import KmerBucketPartitioner
from repro.megis.isp import IspStepTwo
from repro.megis.multissd import MultiSsdStepTwo, split_database

BACKENDS = ("python", "numpy")


class TestSplitDatabase:
    def test_shards_partition_the_database(self, sorted_db):
        shards = split_database(sorted_db, 4)
        combined = [x for s in shards for x in s.database.kmers]
        assert combined == sorted_db.kmers

    def test_ranges_are_contiguous_and_cover_space(self, sorted_db):
        shards = split_database(sorted_db, 3)
        assert shards[0].lo == 0
        assert shards[-1].hi == 1 << (2 * sorted_db.k)
        for a, b in zip(shards, shards[1:]):
            assert a.hi == b.lo

    def test_kmers_lie_in_their_range(self, sorted_db):
        for shard in split_database(sorted_db, 5):
            assert all(shard.lo <= x < shard.hi for x in shard.database.kmers)

    def test_balanced(self, sorted_db):
        shards = split_database(sorted_db, 4)
        sizes = [len(s.database) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_is_whole_db(self, sorted_db):
        shards = split_database(sorted_db, 1)
        assert len(shards) == 1
        assert shards[0].database.kmers == sorted_db.kmers

    def test_invalid_count(self, sorted_db):
        with pytest.raises(ValueError):
            split_database(sorted_db, 0)

    def test_owners_preserved(self, sorted_db):
        for shard in split_database(sorted_db, 3):
            for kmer in shard.database.kmers[:10]:
                assert shard.database.owners_of(kmer) == sorted_db.owners_of(kmer)

    def test_more_shards_than_kmers(self):
        database = SortedKmerDatabase(10, [5, 9], [frozenset({1}), frozenset({2})])
        shards = split_database(database, 5)
        assert [x for s in shards for x in s.database.kmers] == [5, 9]
        assert shards[0].lo == 0 and shards[-1].hi == 1 << 20
        for a, b in zip(shards, shards[1:]):
            assert a.hi == b.lo

    def test_empty_database(self):
        shards = split_database(SortedKmerDatabase(10, [], []), 3)
        assert all(len(s.database) == 0 for s in shards)
        assert shards[0].lo == 0 and shards[-1].hi == 1 << 20
        for a, b in zip(shards, shards[1:]):
            assert a.hi == b.lo

    def test_shards_share_parent_column(self, sorted_db):
        column = sorted_db.column()
        for shard in split_database(sorted_db, 4):
            shard_column = shard.database.column()
            assert shard_column.base is column or len(shard_column) == 0


class TestMultiSsdStepTwo:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_ssds", [1, 2, 4, 8])
    def test_sharded_equals_single(self, sorted_db, kss_tables, sample,
                                   backend, n_ssds):
        query = KmerBucketPartitioner(k=20, n_buckets=4).partition(
            sample.reads
        ).merged_sorted()
        single = IspStepTwo(sorted_db, kss_tables, n_channels=8,
                            backend=backend).run(query)
        multi = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=n_ssds,
                                backend=backend).run(query)
        assert multi[0] == single[0]
        assert multi[1] == single[1]

    def test_cross_backend_identical(self, sorted_db, kss_tables):
        query = sorted_db.kmers[::5]
        results = {
            backend: MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=3,
                                     backend=backend).run(query)
            for backend in BACKENDS
        }
        assert results["python"] == results["numpy"]

    def test_ndarray_query_accepted(self, sorted_db, kss_tables):
        query = sorted_db.kmers[::7]
        engine = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=3, backend="numpy")
        from_list = engine.run(query)
        from_column = engine.run(np.asarray(query, dtype=np.uint64))
        assert from_list == from_column

    def test_duplicate_boundary_kmers(self, sorted_db, kss_tables):
        # A query repeating the exact shard-boundary k-mer must intersect it
        # exactly once, like the single-SSD register merge does.
        shards = split_database(sorted_db, 3)
        boundary = shards[1].lo
        query = sorted(sorted_db.kmers[::6] + [boundary, boundary])
        expected = sorted_db.intersect(sorted(set(query)))
        for backend in BACKENDS:
            multi = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=3,
                                    backend=backend)
            assert multi.run(query)[0] == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_more_ssds_than_kmers(self, kss_tables, sorted_db, backend):
        small = SortedKmerDatabase(
            20, sorted_db.kmers[:3],
            [sorted_db.owners_of(x) for x in sorted_db.kmers[:3]],
        )
        query = sorted_db.kmers[:50:2]
        expected = small.intersect(query)
        multi = MultiSsdStepTwo(small, kss_tables, n_ssds=8, backend=backend)
        assert multi.run(query)[0] == expected

    def test_empty_query(self, sorted_db, kss_tables):
        multi = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=2)
        intersecting, retrieved = multi.run([])
        assert intersecting == []
        assert retrieved == {}

    def test_n_ssds_property(self, sorted_db, kss_tables):
        assert MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=4).n_ssds == 4

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_timings_threaded(self, sorted_db, kss_tables, backend):
        query = sorted_db.kmers[::4]
        multi = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=3, backend=backend)
        timings = PhaseTimings(backend=backend)
        intersecting, _ = multi.run(query, timings=timings)
        assert multi.timings.backend == backend
        assert timings.db_kmers_streamed > 0
        assert timings.query_kmers_streamed > 0
        assert timings.intersect_ms > 0
        assert timings.retrieve_ms > 0
        assert sum(timings.channel_matches.values()) == len(intersecting)
        # The engine accumulates across calls like IspStepTwo does.
        assert multi.timings.db_kmers_streamed == timings.db_kmers_streamed
        multi.run(query)
        assert multi.timings.db_kmers_streamed == 2 * timings.db_kmers_streamed

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=6, deadline=None)
    def test_result_invariant_in_shard_count(self, sorted_db, kss_tables, n):
        query = sorted_db.kmers[::9]
        expected = sorted_db.intersect(query)
        multi = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=n)
        assert multi.run(query)[0] == expected


class TestMultiSsdBatchedMultiSample:
    def _samples(self, sample, backend):
        partitioner = KmerBucketPartitioner(k=20, n_buckets=6, backend=backend)
        return [
            [(b.lo, b.hi, b.kmers) for b in partitioner.partition(reads).buckets]
            for reads in (sample.reads[:150], sample.reads[150:300])
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_ssds", [1, 3])
    def test_batched_equals_single_ssd_batch(self, sorted_db, kss_tables,
                                             sample, backend, n_ssds):
        samples = self._samples(sample, backend)
        single = IspStepTwo(sorted_db, kss_tables,
                            backend=backend).run_bucketed_multi(samples)
        multi = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=n_ssds,
                                backend=backend).run_multi(samples)
        assert multi == single

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_streams_each_shard_once(self, sorted_db, kss_tables,
                                           sample, backend):
        samples = self._samples(sample, backend)
        timings = PhaseTimings()
        multi = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=3, backend=backend)
        multi.run_multi(samples, timings=timings)
        assert timings.samples_batched == 2
        # Each database k-mer streams at most once per batch regardless of
        # the batch width (shards are disjoint).
        assert timings.db_kmers_streamed <= len(sorted_db)

    def test_empty_batch(self, sorted_db, kss_tables):
        multi = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=2)
        assert multi.run_multi([]) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_sample_in_batch(self, sorted_db, kss_tables, sample, backend):
        samples = self._samples(sample, backend)
        space = 1 << 40
        samples.append([(0, space, [])])
        multi = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=3, backend=backend)
        results = multi.run_multi(samples)
        assert results[-1][0] == []
        assert results[-1][1] == {}


class TestUint64BoundaryOverflow:
    """k = 32 puts the key-space bound (1 << 64) beyond the uint64 dtype;
    range edges must resolve positionally instead of overflowing the cast
    (NumPy 1.x would compare via float64 and drop the all-T k-mer)."""

    def test_bisect_column_beyond_dtype(self):
        from repro.backends.base import bisect_column

        column = np.array([1, 2**63, 2**64 - 1], dtype=np.uint64)
        assert bisect_column(column, 1 << 64) == 3
        assert bisect_column(column, 2**64 - 1) == 2
        assert bisect_column(column, 0) == 0

    def test_clip_buckets_keeps_top_kmer(self):
        from repro.backends.base import clip_buckets

        column = np.array([1, 2**63, 2**64 - 1], dtype=np.uint64)
        clipped = clip_buckets([(0, 1 << 64, column)], 2**63, 1 << 64)
        assert len(clipped) == 1
        lo, hi, kmers = clipped[0]
        assert (lo, hi) == (2**63, 1 << 64)
        assert [int(x) for x in kmers] == [2**63, 2**64 - 1]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sharded_k32_keeps_top_kmer(self, kss_tables, backend):
        k = 32
        kmers = [7, 2**40, 2**63, 2**64 - 1]
        database = SortedKmerDatabase(k, kmers, [frozenset({1})] * len(kmers))
        assert database.column().dtype == np.uint64
        query = kmers[:]
        multi = MultiSsdStepTwo(database, kss_tables, n_ssds=3, backend=backend)
        intersecting, _ = multi.run(query)
        assert intersecting == kmers
        batched = multi.run_multi([[(0, 1 << (2 * k), query)]])
        assert batched[0][0] == kmers


class TestShardValidation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_misordered_shards_rejected(self, sorted_db, backend):
        shards = split_database(sorted_db, 3)
        triples = [(s.lo, s.hi, s.database) for s in reversed(shards)]
        with pytest.raises(ValueError):
            get_backend(backend).intersect_sharded(triples, sorted_db.kmers[:10])
        with pytest.raises(ValueError):
            get_backend(backend).intersect_sharded_multi(triples, [[]])
