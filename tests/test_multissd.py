"""Tests for functional multi-SSD database partitioning (Fig 15's premise)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.megis.isp import IspStepTwo
from repro.megis.multissd import MultiSsdStepTwo, split_database


class TestSplitDatabase:
    def test_shards_partition_the_database(self, sorted_db):
        shards = split_database(sorted_db, 4)
        combined = [x for s in shards for x in s.database.kmers]
        assert combined == sorted_db.kmers

    def test_ranges_are_contiguous_and_cover_space(self, sorted_db):
        shards = split_database(sorted_db, 3)
        assert shards[0].lo == 0
        assert shards[-1].hi == 1 << (2 * sorted_db.k)
        for a, b in zip(shards, shards[1:]):
            assert a.hi == b.lo

    def test_kmers_lie_in_their_range(self, sorted_db):
        for shard in split_database(sorted_db, 5):
            assert all(shard.lo <= x < shard.hi for x in shard.database.kmers)

    def test_balanced(self, sorted_db):
        shards = split_database(sorted_db, 4)
        sizes = [len(s.database) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_is_whole_db(self, sorted_db):
        shards = split_database(sorted_db, 1)
        assert len(shards) == 1
        assert shards[0].database.kmers == sorted_db.kmers

    def test_invalid_count(self, sorted_db):
        with pytest.raises(ValueError):
            split_database(sorted_db, 0)

    def test_owners_preserved(self, sorted_db):
        for shard in split_database(sorted_db, 3):
            for kmer in shard.database.kmers[:10]:
                assert shard.database.owners_of(kmer) == sorted_db.owners_of(kmer)


class TestMultiSsdStepTwo:
    @pytest.mark.parametrize("n_ssds", [1, 2, 4, 8])
    def test_sharded_equals_single(self, sorted_db, kss_tables, sample, n_ssds):
        from repro.megis.host import KmerBucketPartitioner

        query = KmerBucketPartitioner(k=20, n_buckets=4).partition(
            sample.reads
        ).merged_sorted()
        single = IspStepTwo(sorted_db, kss_tables, n_channels=8).run(query)
        multi = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=n_ssds).run(query)
        assert multi[0] == single[0]
        assert multi[1] == single[1]

    def test_empty_query(self, sorted_db, kss_tables):
        multi = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=2)
        intersecting, retrieved = multi.run([])
        assert intersecting == []
        assert retrieved == {}

    def test_n_ssds_property(self, sorted_db, kss_tables):
        assert MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=4).n_ssds == 4

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=6, deadline=None)
    def test_result_invariant_in_shard_count(self, sorted_db, kss_tables, n):
        query = sorted_db.kmers[::9]
        expected = sorted_db.intersect(query)
        multi = MultiSsdStepTwo(sorted_db, kss_tables, n_ssds=n)
        assert multi.run(query)[0] == expected
