"""Tests for the report renderers."""

import json

import pytest

from repro.reporting import compare_report, json_report, text_report
from repro.taxonomy.profiles import AbundanceProfile
from repro.taxonomy.tree import ROOT_TAXID, Rank, Taxonomy


@pytest.fixture()
def world():
    taxonomy = Taxonomy()
    taxonomy.add_node(2, ROOT_TAXID, Rank.GENUS, "Alphabacter")
    taxonomy.add_node(3, ROOT_TAXID, Rank.GENUS, "Betacoccus")
    taxonomy.add_node(10, 2, Rank.SPECIES, "A. one")
    taxonomy.add_node(11, 2, Rank.SPECIES, "A. two")
    taxonomy.add_node(12, 3, Rank.SPECIES, "B. one")
    profile = AbundanceProfile({10: 0.5, 11: 0.25, 12: 0.25})
    return taxonomy, profile


class TestTextReport:
    def test_root_is_100_percent(self, world):
        taxonomy, profile = world
        report = text_report(profile, taxonomy)
        assert report.splitlines()[0].startswith("100.00%")

    def test_genus_rollup(self, world):
        taxonomy, profile = world
        report = text_report(profile, taxonomy)
        alphabacter = next(ln for ln in report.splitlines() if "Alphabacter" in ln)
        assert alphabacter.strip().startswith("75.00%")

    def test_all_species_listed(self, world):
        taxonomy, profile = world
        report = text_report(profile, taxonomy)
        for name in ("A. one", "A. two", "B. one"):
            assert name in report

    def test_min_fraction_prunes(self, world):
        taxonomy, profile = world
        report = text_report(profile, taxonomy, min_fraction=0.3)
        assert "A. one" in report
        assert "B. one" not in report

    def test_indentation_by_rank(self, world):
        taxonomy, profile = world
        lines = text_report(profile, taxonomy).splitlines()
        species_line = next(ln for ln in lines if "A. one" in ln)
        genus_line = next(ln for ln in lines if "Alphabacter" in ln)
        assert species_line.index("A. one") > genus_line.index("Alphabacter")


class TestJsonReport:
    def test_structure(self, world):
        taxonomy, profile = world
        data = json.loads(json_report(profile, taxonomy))
        assert set(data) == {"species", "genera", "total"}
        assert data["species"]["10"]["fraction"] == pytest.approx(0.5)
        assert data["genera"]["2"]["fraction"] == pytest.approx(0.75)
        assert data["total"] == pytest.approx(1.0)

    def test_empty_profile(self, world):
        taxonomy, _ = world
        data = json.loads(json_report(AbundanceProfile(), taxonomy))
        assert data["species"] == {}
        assert data["total"] == 0.0


class TestCompareReport:
    def test_deltas(self, world):
        taxonomy, profile = world
        reference = AbundanceProfile({10: 0.4, 12: 0.6})
        report = compare_report(profile, reference, taxonomy)
        assert "+0.1000" in report  # taxid 10: 0.5 vs 0.4
        assert "-0.3500" in report  # taxid 12: 0.25 vs 0.6

    def test_union_of_taxids(self, world):
        taxonomy, profile = world
        reference = AbundanceProfile({99: 1.0})
        # Unknown taxid renders with a placeholder name, not an exception.
        report = compare_report(profile, reference, taxonomy)
        assert "99" in report and "?" in report
