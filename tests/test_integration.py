"""Cross-substrate integration tests.

These tie layers together: the serialized database placed by MegIS FTL and
streamed through the channel simulator; the functional pipeline attached to
a simulated SSD with §4.3.1 buffers; Fig 13's phase-bucket mapping staying
in sync with the timing model's phase names.
"""

import pytest

from repro.databases.builder import DatabaseBuilder
from repro.experiments.fig13_breakdown import BUCKETS, bucketize
from repro.megis.ftl import MegisFtl
from repro.perf.specs import baseline_system
from repro.perf.timing import TimingModel
from repro.ssd.channel import ChannelSimulator, ReadRequest
from repro.ssd.config import ssd_c, ssd_p
from repro.workloads.datasets import cami_spec


class TestFlashImageStreaming:
    """Serialized db -> FTL placement -> channel-level streaming time."""

    @pytest.fixture(scope="class")
    def placed(self, references):
        bundle = DatabaseBuilder(k=20, smaller_ks=(12, 8)).build(references)
        config = ssd_c()
        ftl = MegisFtl(config.geometry)
        layout = ftl.place_database("kmer_db", len(bundle.flash_image))
        return config, layout

    def test_read_order_matches_page_count(self, placed):
        config, layout = placed
        addresses = list(layout.read_order())
        assert len(addresses) == layout.n_pages

    def test_streaming_achieves_full_bandwidth(self, placed):
        config, layout = placed
        sim = ChannelSimulator(config.geometry, config.t_read_us, config.channel_bw)
        requests = [
            ReadRequest(addr.channel, addr.die, multiplane=True)
            for addr in layout.read_order()
        ]
        # Repeat the tiny layout to reach steady state; MegIS's sequential
        # walk uses NAND cache reads, so even a few dies saturate the buses
        # on the channels the image touches.
        result = sim.simulate(requests * 64, cache_mode=True)
        channels_touched = len({r.channel for r in requests})
        peak = config.channel_bw * channels_touched
        assert result.bandwidth > 0.8 * peak

    def test_round_robin_visits_all_channels(self, placed):
        config, layout = placed
        first_round = list(layout.read_order())[: config.geometry.channels]
        assert {a.channel for a in first_round} == set(
            range(min(config.geometry.channels, layout.n_pages))
        )


class TestPipelineOnSimulatedSsd:
    def test_buffers_released_after_analysis(self, sorted_db, sketch_db, sample):
        from repro.megis.pipeline import MegisPipeline
        from repro.ssd.device import SSD

        ssd = SSD(ssd_c())
        pipeline = MegisPipeline(sorted_db, sketch_db, sample.references, ssd=ssd)
        pipeline.analyze(sample.reads, with_abundance=False)
        # Only the restored baseline L2P remains allocated.
        assert set(ssd.dram.allocations()) == {"baseline_l2p"}

    def test_two_analyses_back_to_back(self, sorted_db, sketch_db, sample):
        from repro.megis.pipeline import MegisPipeline
        from repro.ssd.device import SSD

        ssd = SSD(ssd_c())
        pipeline = MegisPipeline(sorted_db, sketch_db, sample.references, ssd=ssd)
        first = pipeline.analyze(sample.reads, with_abundance=False)
        second = pipeline.analyze(sample.reads, with_abundance=False)
        assert first.candidates == second.candidates


class TestPhaseBucketMapping:
    """Fig 13's phase-name mapping must cover what the models emit."""

    @pytest.mark.parametrize("ssd_factory", [ssd_c, ssd_p])
    def test_all_phase_names_mapped(self, ssd_factory):
        model = TimingModel(baseline_system(ssd_factory()), cami_spec("CAMI-L"))
        breakdowns = [
            model.popt(), model.aopt(), model.aopt(use_kss=True),
            model.megis("ms"), model.megis("ms-nol"),
        ]
        for breakdown in breakdowns:
            for phase in breakdown.phases:
                assert phase.name in BUCKETS, (
                    f"phase {phase.name!r} missing from fig13 BUCKETS map"
                )

    def test_bucket_totals_match_breakdown(self):
        model = TimingModel(baseline_system(ssd_c()), cami_spec("CAMI-L"))
        breakdown = model.aopt()
        assert sum(bucketize(breakdown).values()) == pytest.approx(
            breakdown.total_seconds
        )
