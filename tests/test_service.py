"""Concurrency determinism suite for the serving API (tentpole lock).

``AnalysisService`` workers share one session; the executor layer runs
Step-2 bucket/shard tasks on threads.  None of that may change a single
bit of output: every test here compares concurrent serving against the
strictly serial path on the golden-fixture world — both backends, both
abundance methods — and checks that the lock-protected Step-3 cache
counters stay accurate under concurrent submits.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from repro.databases.sketch import SketchDatabase
from repro.databases.sorted_db import SortedKmerDatabase
from repro.megis.index import MegisIndex
from repro.megis.service import (
    AdmissionFull,
    AnalysisService,
    DeadlineExceeded,
)
from repro.megis.session import AnalysisSession, MegisConfig
from repro.workloads.cami import CamiDiversity, make_cami_sample

GOLDEN = Path(__file__).parent / "data" / "golden_pipeline.json"

N_CHUNKS = 5


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def golden_world(golden):
    p = golden["params"]
    sample = make_cami_sample(
        CamiDiversity.MEDIUM,
        n_reads=p["n_reads"],
        n_genera=p["n_genera"],
        species_per_genus=p["species_per_genus"],
        genome_length=p["genome_length"],
        seed=p["seed"],
    )
    sorted_db = SortedKmerDatabase.build(sample.references, k=p["k"])
    sketch = SketchDatabase.build(
        sample.references,
        k_max=p["k"],
        smaller_ks=tuple(p["smaller_ks"]),
        sketch_fraction=p["sketch_fraction"],
    )
    return sample, MegisIndex(sorted_db, sketch, sample.references)


def _golden_config(golden, **overrides) -> MegisConfig:
    p = golden["params"]
    defaults = dict(
        n_buckets=p["n_buckets"], min_containment=p["min_containment"]
    )
    defaults.update(overrides)
    return MegisConfig(**defaults)


def _chunks(reads):
    size = len(reads) // N_CHUNKS
    return [reads[i * size:(i + 1) * size] for i in range(N_CHUNKS)]


def _signature(result):
    return (
        result.intersecting_kmers,
        result.sketch_hits,
        sorted(result.candidates),
        sorted(result.profile.fractions.items()),
    )


class TestConcurrentDeterminism:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("method", ["mapping", "statistical"])
    def test_service_bit_identical_to_serial(self, golden_world, golden,
                                             backend, method):
        """4 workers + ThreadedExecutor sharded Step 2 == the serial path."""
        sample, index = golden_world
        chunks = _chunks(sample.reads)
        serial_session = AnalysisSession(
            index, _golden_config(golden, backend=backend,
                                  abundance_method=method),
        )
        expected = [_signature(serial_session.analyze(c)) for c in chunks]
        assert any(sig[2] for sig in expected), "chunks must call candidates"

        concurrent_session = AnalysisSession(
            index, _golden_config(golden, backend=backend,
                                  abundance_method=method, n_ssds=3,
                                  executor="threads:4"),
        )
        with AnalysisService(concurrent_session, workers=4) as service:
            futures = service.submit_batch(chunks)
            got = [_signature(future.result()) for future in futures]
        assert got == expected

    @pytest.mark.parametrize("method", ["mapping", "statistical"])
    def test_service_reproduces_golden_numbers(self, golden_world, golden,
                                               method):
        """The whole golden sample served concurrently hits the fixture."""
        sample, index = golden_world
        session = AnalysisSession(
            index, _golden_config(golden, backend="numpy",
                                  abundance_method=method, n_ssds=3,
                                  executor="threads:4"),
        )
        with AnalysisService(session, workers=4) as service:
            result = service.submit(sample.reads).result()
        expected = golden["expected"][method]
        assert len(result.intersecting_kmers) == expected["n_intersecting"]
        assert sum(result.intersecting_kmers) == expected["intersecting_sum"]
        assert sorted(result.candidates) == expected["candidates"]
        got_profile = {str(t): f for t, f in result.profile.fractions.items()}
        assert set(got_profile) == set(expected["profile"])
        for taxid, fraction in expected["profile"].items():
            assert got_profile[taxid] == pytest.approx(
                fraction, rel=1e-12, abs=1e-15
            )

    def test_interleaved_submits_preserve_order(self, golden_world, golden):
        """Futures resolve to their own sample however batches coalesce."""
        sample, index = golden_world
        chunks = _chunks(sample.reads)
        serial_session = AnalysisSession(
            index, _golden_config(golden, backend="numpy",
                                  abundance_method="statistical"),
        )
        expected = [_signature(serial_session.analyze(c)) for c in chunks]
        session = AnalysisSession(
            index, _golden_config(golden, backend="numpy",
                                  abundance_method="statistical"),
        )
        with AnalysisService(session, workers=3, max_batch=2) as service:
            futures = [service.submit(c) for c in chunks * 3]
            got = [_signature(future.result()) for future in futures]
        assert got == expected * 3


class TestCacheCountersUnderContention:
    def test_unified_cache_counters_account_for_every_lookup(
        self, sample, sorted_db, sketch_db
    ):
        """hits + misses == submitted samples, exactly, under 4 workers."""
        index = MegisIndex(sorted_db, sketch_db, sample.references)
        chunks = _chunks(sample.reads)[:2]
        session = AnalysisSession(
            index, MegisConfig(backend="numpy", abundance_method="mapping"),
        )
        with AnalysisService(session, workers=4) as service:
            futures = service.submit_batch(chunks * 4)
            results = [future.result() for future in futures]
        with_candidates = sum(1 for r in results if r.candidates)
        assert with_candidates == 8, "every chunk must map candidates"
        unified = session.cache_stats["unified"]
        assert unified.lookups == 8
        distinct = len({frozenset(r.candidates) for r in results})
        assert unified.misses >= distinct
        assert unified.hits == 8 - unified.misses
        species = session.cache_stats["species"]
        all_species = {t for r in results for t in r.candidates}
        assert species.misses >= len(all_species)
        # The cache holds one canonical entry per distinct candidate set,
        # however many threads raced to build it.
        assert len(session._unified_cache) == distinct

    def test_serial_counters_are_exact(self, sample, sorted_db, sketch_db):
        index = MegisIndex(sorted_db, sketch_db, sample.references)
        chunks = _chunks(sample.reads)[:2]
        session = AnalysisSession(
            index, MegisConfig(backend="numpy", abundance_method="mapping"),
        )
        with AnalysisService(session, workers=1, max_batch=1) as service:
            results = [f.result() for f in service.submit_batch(chunks * 3)]
        distinct = len({frozenset(r.candidates) for r in results})
        unified = session.cache_stats["unified"]
        assert unified.lookups == 6
        assert unified.misses == distinct
        assert unified.hits == 6 - distinct


class TestServiceLifecycle:
    def test_submit_after_close_raises(self, golden_world, golden):
        sample, index = golden_world
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        service = AnalysisService(session, workers=2)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(sample.reads[:5])

    def test_failures_propagate_per_future(self, golden_world, golden):
        """A failing sample rejects its future; drain() still returns."""
        sample, index = golden_world
        no_refs = MegisIndex(index.database, index.sketch, references=None)
        session = AnalysisSession(
            no_refs, _golden_config(golden, abundance_method="mapping")
        )
        with AnalysisService(session, workers=2) as service:
            future = service.submit(sample.reads[:40])
            service.drain()
            with pytest.raises(ValueError, match="no reference sequences"):
                future.result()
        assert service.stats.samples_completed == 1

    def test_requires_stateless_session(self, golden_world, golden):
        from repro.ssd.config import ssd_c
        from repro.ssd.device import SSD

        sample, index = golden_world
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical"),
            ssd=SSD(ssd_c()),
        )
        with pytest.raises(ValueError, match="stateless"):
            AnalysisService(session)

    def test_cancelled_future_does_not_poison_its_batch(self, golden_world,
                                                        golden):
        """Cancelling a queued sample drops only that sample: batch-mates
        still resolve to their results and drain() still returns."""
        sample, index = golden_world
        chunks = _chunks(sample.reads)[:4]
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        # One worker, wide backlog: while the worker chews the first
        # batch, later futures sit queued and can be cancelled before a
        # worker claims them (claimed futures refuse cancellation).
        with AnalysisService(session, workers=1, max_batch=2) as svc:
            futures = svc.submit_batch(chunks * 4)
            cancelled = [f for f in futures if f.cancel()]
            svc.drain()
            kept = [f for f in futures if not f.cancelled()]
            results = [f.result() for f in kept]
        assert len(cancelled) + len(kept) == len(futures)
        assert all(r.candidates is not None for r in results)
        assert svc.stats.samples_cancelled == len(cancelled)
        assert svc.stats.samples_completed == len(kept)

    def test_submit_after_close_submissions_raises(self, golden_world,
                                                   golden):
        sample, index = golden_world
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        with AnalysisService(session, workers=1) as service:
            future = service.submit(sample.reads[:20])
            service.close_submissions()
            with pytest.raises(RuntimeError, match="closed"):
                service.submit(sample.reads[:20])
            assert future.result().profile is not None

    def test_drain_from_another_thread(self, golden_world, golden):
        sample, index = golden_world
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        with AnalysisService(session, workers=2) as service:
            futures = service.submit_batch(_chunks(sample.reads))
            drained = threading.Event()

            def waiter():
                service.drain()
                drained.set()

            threading.Thread(target=waiter, daemon=True).start()
            [future.result() for future in futures]
            assert drained.wait(timeout=30)
        stats = service.stats
        assert stats.samples_submitted == stats.samples_completed == N_CHUNKS
        assert stats.widest_batch <= 2  # default max_batch == workers


class TestBoundedAdmission:
    """Backpressure and rejection semantics of the bounded queue."""

    def _gated_session(self, golden_world, golden):
        """A session whose analyze blocks until ``gate`` is set, plus the
        ``started`` event it sets on first entry (so tests can hold the
        single worker busy deterministically)."""
        _, index = golden_world
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        started, gate = threading.Event(), threading.Event()
        real_analyze = session.analyze

        def gated_analyze(reads, with_abundance=True):
            started.set()
            assert gate.wait(timeout=30)
            return real_analyze(reads, with_abundance)

        session.analyze = gated_analyze
        return session, started, gate

    def test_full_queue_rejects_and_counts(self, golden_world, golden):
        """block=False (or a timed-out blocking submit) raises a
        structured AdmissionFull; stats count rejections separately from
        accepted samples."""
        sample, index = golden_world
        session, started, gate = self._gated_session(golden_world, golden)
        chunks = _chunks(sample.reads)
        with AnalysisService(session, workers=1, max_queue=2) as service:
            head = service.submit(chunks[0])
            assert started.wait(timeout=10)  # worker busy, queue empty
            queued = [service.submit(chunks[1]), service.submit(chunks[2])]
            with pytest.raises(AdmissionFull) as excinfo:
                service.submit(chunks[3], block=False)
            assert excinfo.value.queued == 2
            assert excinfo.value.max_queue == 2
            with pytest.raises(AdmissionFull):
                service.submit(chunks[3], timeout=0.05)
            assert service.stats.samples_rejected == 2
            assert service.stats.samples_submitted == 3
            gate.set()
            results = [f.result(timeout=30) for f in [head] + queued]
        assert all(r.profile is not None for r in results)
        stats = service.stats
        assert stats.samples_completed == 3
        assert stats.samples_rejected == 2
        assert stats.peak_queued == 2

    def test_blocked_submit_admits_when_space_frees(self, golden_world,
                                                    golden):
        """A blocking submit parks until a worker claims from the queue,
        so the high-water mark never exceeds the bound."""
        sample, _ = golden_world
        session, started, gate = self._gated_session(golden_world, golden)
        chunks = _chunks(sample.reads)
        with AnalysisService(session, workers=1, max_queue=1) as service:
            head = service.submit(chunks[0])
            assert started.wait(timeout=10)
            service.submit(chunks[1])  # fills the queue
            admitted = []
            blocked = threading.Thread(
                target=lambda: admitted.append(service.submit(chunks[2]))
            )
            blocked.start()
            time.sleep(0.1)
            assert not admitted, "submit must park while the queue is full"
            gate.set()  # worker drains; the parked submit admits
            blocked.join(timeout=30)
            assert admitted
            head.result(timeout=30)
            service.drain()
        stats = service.stats
        assert stats.samples_submitted == stats.samples_completed == 3
        assert stats.peak_queued == 1


class TestDeadlines:
    def test_expired_request_fails_without_running(self, golden_world,
                                                   golden):
        """deadline_ms=0 always expires (claim strictly follows enqueue);
        the future carries DeadlineExceeded and nothing is analyzed."""
        sample, index = golden_world
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        with AnalysisService(session, workers=1) as service:
            future = service.submit(sample.reads[:40], tag="late",
                                    deadline_ms=0)
            with pytest.raises(DeadlineExceeded) as excinfo:
                future.result(timeout=30)
            service.drain()
        assert excinfo.value.tag == "late"
        assert excinfo.value.deadline_ms == 0
        stats = service.stats
        assert stats.samples_expired == 1
        assert stats.samples_completed == 0
        assert stats.batches_dispatched == 0

    def test_expired_request_still_reaches_the_stream(self, golden_world,
                                                      golden):
        sample, index = golden_world
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        with AnalysisService(session, workers=1) as service:
            service.submit(sample.reads[:30], tag="dead", deadline_ms=0)
            service.submit(sample.reads[30:60], tag="alive")
            service.close_submissions()
            emitted = list(service.results())
        by_tag = {entry.tag: entry for entry in emitted}
        assert set(by_tag) == {"dead", "alive"}
        with pytest.raises(DeadlineExceeded):
            by_tag["dead"].future.result()
        assert by_tag["dead"].metrics.batch_size == 0
        assert by_tag["alive"].future.result().profile is not None
        assert by_tag["alive"].metrics.batch_size == 1


class TestCompletionStream:
    def test_strict_order_restores_submission_order(self, golden_world,
                                                    golden):
        """results(strict_order=True) emits in admission order with the
        same signatures as the serial path, whatever the workers did."""
        sample, index = golden_world
        chunks = _chunks(sample.reads)
        serial = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        expected = [_signature(serial.analyze(c)) for c in chunks]
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        with AnalysisService(session, workers=3, max_batch=1) as service:
            for i, chunk in enumerate(chunks):
                service.submit(chunk, tag=f"s{i}")
            service.close_submissions()
            emitted = list(service.results(strict_order=True))
        assert [entry.tag for entry in emitted] == [
            f"s{i}" for i in range(N_CHUNKS)
        ]
        assert [_signature(e.future.result()) for e in emitted] == expected
        for entry in emitted:
            metrics = entry.metrics
            assert metrics.batch_size == 1
            assert metrics.service_ms > 0
            assert metrics.latency_ms >= metrics.queue_wait_ms >= 0

    def test_as_completed_emits_everything_once(self, golden_world, golden):
        sample, index = golden_world
        chunks = _chunks(sample.reads)
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        with AnalysisService(session, workers=2) as service:
            service.submit_batch(chunks, tag=None)
            service.close_submissions()
            emitted = list(service.as_completed())
        # Untagged requests are labelled by admission sequence.
        assert sorted(entry.tag for entry in emitted) == list(range(N_CHUNKS))
        stats = service.stats
        assert stats.samples_completed == N_CHUNKS
        assert stats.queue_wait_total_ms >= stats.queue_wait_max_ms >= 0
        assert stats.mean_queue_wait_ms >= 0

    def test_results_streams_while_service_runs(self, golden_world, golden):
        """A consumer sees early completions while later samples are
        still being submitted — the incremental-emission contract."""
        sample, index = golden_world
        chunks = _chunks(sample.reads)
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        seen = []
        with AnalysisService(session, workers=1, max_batch=1) as service:
            consumer_done = threading.Event()

            def consume():
                for entry in service.results():
                    seen.append((entry.tag, time.perf_counter()))
                consumer_done.set()

            threading.Thread(target=consume, daemon=True).start()
            service.submit(chunks[0], tag="first").result(timeout=30)
            deadline = time.monotonic() + 30
            while not seen and time.monotonic() < deadline:
                time.sleep(0.005)
            assert seen and seen[0][0] == "first", (
                "first result must stream out before later submissions"
            )
            submitted_second_at = time.perf_counter()
            service.submit(chunks[1], tag="second").result(timeout=30)
            service.close_submissions()
            assert consumer_done.wait(timeout=30)
        assert [tag for tag, _ in seen] == ["first", "second"]
        assert seen[0][1] < submitted_second_at


class TestBatchWindow:
    def test_window_coalesces_trickling_arrivals(self, golden_world, golden):
        """With a wide-open window, samples arriving over ~50 ms coalesce
        into ONE §4.7 batch; the window collapses the moment the batch
        fills, so the test doesn't pay the full window."""
        sample, index = golden_world
        chunks = _chunks(sample.reads)[:4]
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        with AnalysisService(session, workers=1, max_batch=4,
                             batch_window_ms=30_000) as service:
            futures = [service.submit(chunks[0])]
            time.sleep(0.05)
            futures += [service.submit(c) for c in chunks[1:]]
            results = [f.result(timeout=60) for f in futures]
        assert all(r.profile is not None for r in results)
        stats = service.stats
        assert stats.batches_dispatched == 1
        assert stats.widest_batch == 4
        assert stats.mean_batch == 4.0

    def test_zero_window_dispatches_eagerly(self, golden_world, golden):
        """The control: no window, one worker, sequential waits — every
        sample rides its own batch."""
        sample, index = golden_world
        chunks = _chunks(sample.reads)[:3]
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        with AnalysisService(session, workers=1, max_batch=4) as service:
            for chunk in chunks:
                service.submit(chunk).result(timeout=30)
        assert service.stats.batches_dispatched == 3
        assert service.stats.widest_batch == 1

    def test_window_results_stay_bit_identical(self, golden_world, golden):
        sample, index = golden_world
        chunks = _chunks(sample.reads)
        serial = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        expected = [_signature(serial.analyze(c)) for c in chunks]
        session = AnalysisSession(
            index, _golden_config(golden, abundance_method="statistical")
        )
        with AnalysisService(session, workers=2, max_batch=3,
                             batch_window_ms=20) as service:
            futures = [service.submit(c) for c in chunks]
            got = [_signature(f.result(timeout=60)) for f in futures]
        assert got == expected
