"""Tests for the read simulator."""

import pytest

from repro.sequences.generator import GenomeGenerator
from repro.sequences.reads import ReadSimulator, reads_to_sequences


@pytest.fixture(scope="module")
def refs():
    return GenomeGenerator(
        n_genera=2, species_per_genus=2, genome_length=1000, seed=11
    ).generate()


class TestReadSimulator:
    def test_read_count_and_length(self, refs):
        taxids = refs.species_taxids
        reads = ReadSimulator(read_length=80, seed=1).simulate(
            refs, {taxids[0]: 1.0}, 50
        )
        assert len(reads) == 50
        assert all(len(r) == 80 for r in reads)

    def test_read_ids_sequential(self, refs):
        taxids = refs.species_taxids
        reads = ReadSimulator(seed=1).simulate(refs, {taxids[0]: 1.0}, 20)
        assert [r.read_id for r in reads] == list(range(20))

    def test_provenance_respects_profile(self, refs):
        taxids = refs.species_taxids
        reads = ReadSimulator(seed=2).simulate(
            refs, {taxids[0]: 1.0, taxids[1]: 0.0}, 30
        )
        assert {r.true_taxid for r in reads} == {taxids[0]}

    def test_abundance_proportions(self, refs):
        taxids = refs.species_taxids
        reads = ReadSimulator(seed=3).simulate(
            refs, {taxids[0]: 0.9, taxids[1]: 0.1}, 1000
        )
        majority = sum(1 for r in reads if r.true_taxid == taxids[0])
        assert 820 < majority < 960

    def test_unnormalized_weights_accepted(self, refs):
        taxids = refs.species_taxids
        reads = ReadSimulator(seed=4).simulate(refs, {taxids[0]: 5, taxids[1]: 5}, 40)
        assert len(reads) == 40

    def test_zero_error_reads_are_substrings(self, refs):
        taxid = refs.species_taxids[0]
        genome = refs.sequence(taxid)
        reads = ReadSimulator(read_length=60, error_rate=0.0, seed=5).simulate(
            refs, {taxid: 1.0}, 25
        )
        assert all(r.sequence in genome for r in reads)

    def test_errors_introduce_mismatches(self, refs):
        taxid = refs.species_taxids[0]
        genome = refs.sequence(taxid)
        reads = ReadSimulator(read_length=100, error_rate=0.2, seed=6).simulate(
            refs, {taxid: 1.0}, 20
        )
        assert any(r.sequence not in genome for r in reads)

    def test_short_genome_truncates(self, refs):
        taxid = refs.species_taxids[0]
        simulator = ReadSimulator(read_length=10_000, error_rate=0.0, seed=7)
        reads = simulator.simulate(refs, {taxid: 1.0}, 3)
        assert all(len(r) == len(refs.sequence(taxid)) for r in reads)

    def test_unknown_taxid_raises(self, refs):
        with pytest.raises(KeyError):
            ReadSimulator(seed=8).simulate(refs, {99999: 1.0}, 5)

    def test_empty_profile_raises(self, refs):
        with pytest.raises(ValueError):
            ReadSimulator(seed=9).simulate(refs, {refs.species_taxids[0]: 0.0}, 5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ReadSimulator(read_length=0)
        with pytest.raises(ValueError):
            ReadSimulator(error_rate=1.0)

    def test_deterministic(self, refs):
        taxids = refs.species_taxids
        profile = {taxids[0]: 0.5, taxids[1]: 0.5}
        a = ReadSimulator(seed=10).simulate(refs, profile, 30)
        b = ReadSimulator(seed=10).simulate(refs, profile, 30)
        assert [r.sequence for r in a] == [r.sequence for r in b]

    def test_reads_to_sequences(self, refs):
        taxid = refs.species_taxids[0]
        reads = ReadSimulator(seed=11).simulate(refs, {taxid: 1.0}, 5)
        assert reads_to_sequences(reads) == [r.sequence for r in reads]
