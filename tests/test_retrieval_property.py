"""Randomized cross-backend property tests for the columnar owner path.

The CSR retrieval layout, the ``np.unique`` hit accumulation, and the
batch containment scoring must be *bit-identical* across backends — the
paper's accuracy-identity claim rests on it.  Each seed builds a random
synthetic world (database + KSS) and drives the full owner path on both
backends: KSS retrieval -> sketch_hits -> candidates -> statistical
abundance profile.  Seeds deliberately cover the awkward shapes:

- empty retrievals (every query misses) and empty query lists;
- single-level KSS (no smaller-k tables at all);
- duplicate-taxID prefix groups (clustered k-mers whose owner sets repeat
  across rows of the same prefix group — the regime where occurrence
  counting and set-union semantics can drift apart).
"""

from __future__ import annotations

import random

import pytest

from repro.backends import get_backend
from repro.backends.retrieval import RetrievalResult
from repro.databases.kss import KssTables
from repro.experiments.backend_scaling import synthetic_sketch
from repro.tools.metalign import accumulate_hits, select_candidates
from repro.tools.statistical import StatisticalAbundanceEstimator

K = 14
SPACE = 1 << (2 * K)
SMALLER = (8, 5)
MIN_CONTAINMENT = 0.1
N_SEEDS = 50


def make_world(seed: int):
    """One random (sketch, kss, queries) world; shape varies with the seed."""
    rng = random.Random(seed)
    n = rng.randrange(5, 200)
    if seed % 4 == 0:
        # Clustered k-mers: many rows share smaller-k prefixes, and owner
        # sets drawn from a tiny pool repeat within each prefix group.
        base = rng.randrange(SPACE - (n * 8))
        kmers = sorted(rng.sample(range(base, base + n * 8), n))
        pool = range(1, 5)
    else:
        kmers = sorted(rng.sample(range(SPACE), n))
        pool = range(1, 12)
    owners = [
        frozenset(rng.sample(pool, rng.randint(1, min(3, len(pool)))))
        for _ in kmers
    ]
    smaller_ks = () if seed % 5 == 0 else SMALLER
    sketch = synthetic_sketch(kmers, owners, k_max=K, smaller_ks=smaller_ks)
    kss = KssTables(sketch)

    if seed % 7 == 0:
        queries = []  # empty query list
    elif seed % 7 == 1:
        # All-miss queries: non-empty retrieval input, empty k_max hits.
        present = set(kmers)
        queries = sorted(
            x for x in rng.sample(range(SPACE), 30) if x not in present
        )
    else:
        hits = rng.sample(kmers, rng.randrange(0, min(40, len(kmers)) + 1))
        misses = [rng.randrange(SPACE) for _ in range(rng.randrange(0, 30))]
        queries = sorted(set(hits + misses))
    return sketch, kss, queries


def owner_path(backend: str, sketch, kss, queries):
    """retrieval -> sketch_hits -> candidates -> statistical profile."""
    retrieved = get_backend(backend).retrieve(kss, queries)
    hits = accumulate_hits(retrieved)
    sketch_hits = hits.as_dict()
    candidates = select_candidates(sketch, hits, MIN_CONTAINMENT)
    profile, _ = StatisticalAbundanceEstimator(sketch).estimate_from_retrieval(
        retrieved, candidates
    )
    return retrieved, sketch_hits, candidates, profile


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_backends_bit_identical(seed):
    sketch, kss, queries = make_world(seed)
    py = owner_path("python", sketch, kss, queries)
    np_ = owner_path("numpy", sketch, kss, queries)

    # Retrieval results agree with each other and the software reference.
    reference = kss.retrieve(queries)
    assert py[0] == np_[0] == reference
    # sketch_hits, candidates, and abundance fractions are bit-identical.
    assert py[1] == np_[1]
    assert py[2] == np_[2]
    assert py[3].fractions == np_[3].fractions


@pytest.mark.parametrize("seed", [1, 4, 9, 20])
def test_csr_blocks_internally_consistent(seed):
    """Offsets are monotone with one row per query, and the CSR slices
    reproduce exactly the dict-adapter view."""
    _, kss, queries = make_world(seed)
    for backend in ("python", "numpy"):
        retrieved = get_backend(backend).retrieve(kss, queries)
        view = retrieved.to_query_dicts()
        for k, block in retrieved.levels.items():
            assert len(block.offsets) == len(retrieved.queries) + 1
            counts = list(block.counts())
            assert all(c >= 0 for c in counts)
            assert sum(counts) == block.total() == len(block.taxids)
            for i, q in enumerate(retrieved.queries):
                row = [int(t) for t in block.slice_of(i)]
                assert row == sorted(row)
                assert frozenset(row) == view[q].get(k, frozenset())


@pytest.mark.parametrize("seed", [3, 8, 11])
def test_columnar_concatenate_roundtrip(seed):
    """Splitting queries anywhere and concatenating columns is lossless."""
    sketch, kss, queries = make_world(seed)
    if len(queries) < 2:
        pytest.skip("needs at least two queries to split")
    rng = random.Random(seed + 1000)
    cut = rng.randrange(1, len(queries))
    for backend in ("python", "numpy"):
        whole = get_backend(backend).retrieve(kss, queries)
        parts = [
            get_backend(backend).retrieve(kss, queries[:cut]),
            get_backend(backend).retrieve(kss, queries[cut:]),
        ]
        assert RetrievalResult.concatenate(parts) == whole


@pytest.mark.parametrize("seed", [0, 5, 35])
def test_single_level_kss_has_only_kmax(seed):
    """seed % 5 == 0 worlds build a KSS with no smaller-k tables."""
    sketch, kss, queries = make_world(seed)
    assert kss.smaller_ks == ()
    for backend in ("python", "numpy"):
        retrieved = get_backend(backend).retrieve(kss, queries)
        assert set(retrieved.levels) == {K}


def test_query_dict_adapter_matches_mapping_fold():
    """to_query_dicts preserves the historical view: the mapping-based
    accumulate fold over it must equal the columnar fold."""
    sketch, kss, queries = make_world(2)
    for backend in ("python", "numpy"):
        retrieved = get_backend(backend).retrieve(kss, queries)
        columnar = accumulate_hits(retrieved)
        mapping = accumulate_hits(retrieved.to_query_dicts())
        assert columnar.as_dict() == mapping.as_dict()
        assert select_candidates(sketch, columnar, MIN_CONTAINMENT) == \
            select_candidates(sketch, mapping, MIN_CONTAINMENT)
