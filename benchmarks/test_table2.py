"""Benchmark: regenerate Table 2 (accelerator area and power)."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.table2_area import run


def test_table2_area(benchmark):
    result = benchmark(run)
    emit(result)
    total = next(r for r in result.rows if r["unit"] == "TOTAL")
    assert total["power_mw"] == pytest.approx(7.658, abs=0.01)
