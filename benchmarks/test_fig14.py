"""Benchmark: regenerate Fig 14 (database-size sweep)."""

from benchmarks.conftest import emit
from repro.experiments.fig14_dbsize import run


def test_fig14_dbsize(benchmark):
    result = benchmark(run)
    emit(result)
    for ssd in ("SSD-C", "SSD-P"):
        series = [r["MS"] for r in result.rows if r["ssd"] == ssd]
        assert series == sorted(series)  # speedup grows with db size
