"""Benchmarks: the design-choice ablations DESIGN.md calls out."""

from benchmarks.conftest import emit
from repro.experiments.ablation_buckets import run as run_buckets
from repro.experiments.ablation_sketch import run as run_sketch
from repro.experiments.isp_management import run as run_management


def test_ablation_buckets(benchmark):
    result = benchmark.pedantic(run_buckets, rounds=1, iterations=1)
    emit(result)
    modeled = [r["modeled_seconds"] for r in result.rows]
    assert modeled == sorted(modeled, reverse=True)


def test_ablation_sketch(benchmark):
    result = benchmark.pedantic(run_sketch, rounds=1, iterations=1)
    emit(result)
    sizes = [r["kss_bytes"] for r in result.rows]
    assert sizes == sorted(sizes)


def test_isp_management(benchmark):
    result = benchmark.pedantic(run_management, rounds=1, iterations=1)
    emit(result)
    rows = {r["quantity"]: r["value"] for r in result.rows}
    assert rows["baseline_write_amplification"] > 1.0
    assert rows["megis_isp_flash_writes"] == 0.0
