"""Serving benchmarks: streaming emission, throughput, and the QoS trade.

Pins the structural wins of the streaming serving API:

- ``repro serve`` must emit its first result while stdin is still open —
  the incremental-emission contract that lets the daemon sit under an
  infinite stream (enforced with a gated fake stdin that refuses to EOF
  until a result line appears);
- ``AnalysisService(workers=4)`` over the numpy kernels must serve the
  multi-sample workload at >=2x the samples/sec of ``workers=1`` — and
  produce bit-identical results.  Step 2 runs paced (the modeled flash
  stream as real wall time, ``repro.backends.paced``), which is the
  regime the paper's serving story lives in: stream-bound, not
  compute-bound.  The speedup comes from two compounding mechanisms that
  work even on a single CPU core: workers coalesce queued samples into
  §4.7 batches (the stream is paid once per batch) and the paced waits of
  independent batches overlap across threads;
- the ``--batch-window-ms`` knob must show its monotone endpoints on the
  paced backend: coalescing a burst raises throughput, and delaying a
  trickle raises p99 latency (the §4.7 trade the ``qos_latency``
  experiment sweeps);
- a ThreadedExecutor-driven sharded Step 2 must reproduce the serial
  multi-SSD result exactly while overlapping the shards' paced streams
  (``measured_overlap_saved_ms > 0``);
- ``repro gateway`` must serve four concurrent TCP clients bit-identically
  to serial analyze, and a per-client token bucket must shed a flooding
  client into structured rejections while its victims come out whole —
  both land as rows in the ``BENCH_serving.json`` CI artifact.
"""

import asyncio
import json
import os
import threading
import time

import pytest

from benchmarks.conftest import emit
from repro.backends.paced import PacedStepTwoBackend
from repro.megis import wire
from repro.megis.index import MegisIndex
from repro.megis.multissd import MultiSsdStepTwo
from repro.megis.service import AnalysisService
from repro.megis.session import AnalysisSession, MegisConfig

N_SAMPLES = 12
#: Scaled-down stream bandwidth matched to the benchmark database, so the
#: paced stream dominates the way flash streaming dominates at paper scale.
MB_PER_S = 4.0
#: Bandwidth for the GIL-bound workload: light pacing, so the pure-Python
#: mapping Step 3 dominates and the executor substrate is what's measured.
GIL_MB_PER_S = 32.0


def _result_signature(result):
    return (
        result.intersecting_kmers,
        sorted(result.candidates),
        sorted(result.profile.fractions.items()),
    )


def _sample_stream(bench_sample):
    chunk = len(bench_sample.reads) // N_SAMPLES
    return [
        bench_sample.reads[i * chunk:(i + 1) * chunk] for i in range(N_SAMPLES)
    ]


def _paced_session(bench_sorted_db, bench_sketch) -> AnalysisSession:
    index = MegisIndex(bench_sorted_db, bench_sketch)
    backend = PacedStepTwoBackend("numpy", mb_per_s=MB_PER_S)
    return AnalysisSession(
        index, MegisConfig(abundance_method="statistical"), backend=backend
    )


def _serve(session, samples, workers):
    with AnalysisService(session, workers=workers) as service:
        start = time.perf_counter()
        futures = service.submit_batch(samples)
        results = [future.result() for future in futures]
        elapsed = time.perf_counter() - start
    return results, elapsed


def test_service_workers_speedup_floor(bench_sorted_db, bench_sketch,
                                       bench_sample):
    """workers=4 must be >=2x samples/sec over workers=1, bit-identically.

    Acceptance floor of the concurrent serving API (typical margin: ~3x
    even on one core; more with real thread parallelism).  Best-of-N on
    both sides so a noisy-neighbor pause cannot flip the verdict.
    """
    samples = _sample_stream(bench_sample)
    expected, _ = _serve(
        _paced_session(bench_sorted_db, bench_sketch), samples, workers=1
    )
    expected_signature = [_result_signature(r) for r in expected]
    assert any(sig[1] for sig in expected_signature), "stream must hit the index"

    serial_s = min(
        _serve(_paced_session(bench_sorted_db, bench_sketch), samples, 1)[1]
        for _ in range(2)
    )
    concurrent_s = float("inf")
    for _ in range(3):
        results, elapsed = _serve(
            _paced_session(bench_sorted_db, bench_sketch), samples, 4
        )
        assert [_result_signature(r) for r in results] == expected_signature
        concurrent_s = min(concurrent_s, elapsed)

    speedup = serial_s / concurrent_s
    assert speedup >= 2.0, (
        f"AnalysisService(workers=4) only {speedup:.2f}x over workers=1 "
        f"({N_SAMPLES / serial_s:.1f} -> {N_SAMPLES / concurrent_s:.1f} "
        f"samples/s)"
    )


@pytest.mark.parametrize("workers", [1, 4])
def test_service_throughput(benchmark, bench_sorted_db, bench_sketch,
                            bench_sample, workers):
    """Samples/sec through the service at each worker count (CI artifact).

    The uploaded ``BENCH_serving.json`` carries the serving-quality
    fields alongside the wall time: queue-wait aggregates, batch-width
    shape, and per-request latency percentiles.
    """
    samples = _sample_stream(bench_sample)
    session = _paced_session(bench_sorted_db, bench_sketch)
    captured = {}

    def serve_stream():
        with AnalysisService(session, workers=workers) as service:
            service.submit_batch(samples)
            service.close_submissions()
            completed = list(service.results())
        captured["stats"] = service.stats
        captured["latencies"] = sorted(
            entry.metrics.latency_ms for entry in completed
        )
        captured["batch_sizes"] = [
            entry.metrics.batch_size for entry in completed
        ]
        return [entry.future.result() for entry in completed]

    results = benchmark.pedantic(serve_stream, rounds=3, iterations=1)
    assert all(r.candidates is not None for r in results)
    stats, latencies = captured["stats"], captured["latencies"]
    benchmark.extra_info["mean_queue_wait_ms"] = round(
        stats.mean_queue_wait_ms, 3
    )
    benchmark.extra_info["max_queue_wait_ms"] = round(
        stats.queue_wait_max_ms, 3
    )
    benchmark.extra_info["peak_queued"] = stats.peak_queued
    benchmark.extra_info["mean_batch"] = round(stats.mean_batch, 3)
    benchmark.extra_info["widest_batch"] = stats.widest_batch
    benchmark.extra_info["p50_latency_ms"] = round(
        latencies[len(latencies) // 2], 3
    )
    benchmark.extra_info["p99_latency_ms"] = round(latencies[-1], 3)


def _gil_bound_session(bench_sorted_db, bench_sketch, bench_sample,
                       executor=None) -> AnalysisSession:
    """Mapping-Step-3 serving: pure-Python read mapping under light pacing.

    This is the workload the GIL caps — thread workers serialize on the
    mapper's Python loops, a forked process pool does not."""
    index = MegisIndex(bench_sorted_db, bench_sketch, bench_sample.references)
    backend = PacedStepTwoBackend("numpy", mb_per_s=GIL_MB_PER_S)
    return AnalysisSession(
        index, MegisConfig(abundance_method="mapping", executor=executor),
        backend=backend,
    )


def _serve_closing(session, samples, workers):
    """`_serve`, but also reaping any forked worker pool afterwards."""
    with session:
        return _serve(session, samples, workers)


@pytest.mark.parametrize("substrate", ["threads:4", "processes:4"])
def test_service_executor_substrate_throughput(benchmark, bench_sorted_db,
                                               bench_sketch, bench_sample,
                                               substrate):
    """Samples/sec per serving substrate on the GIL-bound Step-3 workload.

    The threads row runs four service worker threads over a serial
    session; the processes row runs the same four service threads
    dispatching into a ``processes:4`` fork-after-warm pool.  Both rows
    land in ``BENCH_serving.json`` (the CI artifact), so the
    threads-vs-processes gap is tracked run over run; the hard >=1.5x
    floor lives in ``test_processes_beat_threads_floor`` below.
    """
    samples = _sample_stream(bench_sample)
    expected, _ = _serve_closing(
        _gil_bound_session(bench_sorted_db, bench_sketch, bench_sample),
        samples, workers=1,
    )
    expected_signature = [_result_signature(r) for r in expected]
    assert any(sig[1] for sig in expected_signature), "stream must hit the index"
    executor = None if substrate == "threads:4" else substrate
    captured = {}

    def serve_stream():
        session = _gil_bound_session(
            bench_sorted_db, bench_sketch, bench_sample, executor=executor
        )
        with session:
            results, _ = _serve(session, samples, workers=4)
            runner = session._runner
            captured["respawns"] = runner.respawns if runner else 0
        assert [_result_signature(r) for r in results] == expected_signature
        return results

    benchmark.pedantic(serve_stream, rounds=3, iterations=1)
    benchmark.extra_info["executor"] = substrate
    benchmark.extra_info["cpus"] = len(os.sched_getaffinity(0))
    benchmark.extra_info["n_samples"] = N_SAMPLES
    benchmark.extra_info["respawns"] = captured["respawns"]


@pytest.mark.skipif(
    len(os.sched_getaffinity(0)) < 2,
    reason="the >=1.5x processes-over-threads floor needs real CPU "
           "parallelism; a single-core host cannot beat the GIL",
)
def test_processes_beat_threads_floor(bench_sorted_db, bench_sketch,
                                      bench_sample):
    """processes:4 must serve the GIL-bound stream >=1.5x faster than
    threads:4, bit-identically (the process-tier acceptance floor).

    Step 3 is pure-Python read mapping: four service threads serialize on
    the GIL, four forked workers do not.  Best-of-N on both sides so a
    noisy-neighbor pause cannot flip the verdict.
    """
    samples = _sample_stream(bench_sample)
    expected, _ = _serve_closing(
        _gil_bound_session(bench_sorted_db, bench_sketch, bench_sample),
        samples, workers=1,
    )
    expected_signature = [_result_signature(r) for r in expected]

    threads_s = float("inf")
    for _ in range(2):
        results, elapsed = _serve_closing(
            _gil_bound_session(bench_sorted_db, bench_sketch, bench_sample),
            samples, workers=4,
        )
        assert [_result_signature(r) for r in results] == expected_signature
        threads_s = min(threads_s, elapsed)

    processes_s = float("inf")
    for _ in range(3):
        results, elapsed = _serve_closing(
            _gil_bound_session(bench_sorted_db, bench_sketch, bench_sample,
                               executor="processes:4"),
            samples, workers=4,
        )
        assert [_result_signature(r) for r in results] == expected_signature
        processes_s = min(processes_s, elapsed)

    speedup = threads_s / processes_s
    assert speedup >= 1.5, (
        f"processes:4 only {speedup:.2f}x over threads:4 on the GIL-bound "
        f"workload ({N_SAMPLES / threads_s:.1f} -> "
        f"{N_SAMPLES / processes_s:.1f} samples/s)"
    )


def test_batch_window_trade_monotone_endpoints(benchmark):
    """The qos_latency sweep's report artifact must show the §4.7 trade:
    under a burst, widening the window raises throughput (one coalesced
    stream instead of two); under a trickle, it raises p99 latency (pure
    admission delay).  Endpoints only — the middle of the curve is
    reported, not asserted, so pacing noise cannot flake CI."""
    from repro.experiments.qos_latency import run as run_qos

    result = benchmark.pedantic(run_qos, rounds=1, iterations=1)
    emit(result)
    burst = {r["window_ms"]: r for r in result.rows if r["regime"] == "burst"}
    trickle = {r["window_ms"]: r for r in result.rows
               if r["regime"] == "trickle"}
    windows = sorted(burst)
    lo, hi = windows[0], windows[-1]
    assert burst[hi]["samples_per_s"] > burst[lo]["samples_per_s"], (
        "burst coalescing must raise throughput: "
        f"{burst[lo]['samples_per_s']:.1f} -> {burst[hi]['samples_per_s']:.1f}"
    )
    assert burst[hi]["batches"] < burst[lo]["batches"]
    assert trickle[hi]["p99_ms"] > trickle[lo]["p99_ms"], (
        "trickle admission delay must raise p99: "
        f"{trickle[lo]['p99_ms']:.1f} -> {trickle[hi]['p99_ms']:.1f} ms"
    )
    benchmark.extra_info["burst_samples_per_s"] = {
        str(w): round(burst[w]["samples_per_s"], 2) for w in windows
    }
    benchmark.extra_info["trickle_p99_ms"] = {
        str(w): round(trickle[w]["p99_ms"], 2) for w in windows
    }


class _GatedStdin:
    """Fake stdin that refuses to EOF until a result line has streamed out.

    If ``repro serve`` buffered results until EOF (the old lifecycle),
    this deadlocks the reader and the wait below times the test out —
    first emission strictly before EOF is the only way through."""

    def __init__(self, lines, first_result_seen):
        self._lines = list(lines)
        self._first_result_seen = first_result_seen
        self.eof_at = None

    def __iter__(self):
        return self

    def __next__(self):
        if self._lines:
            return self._lines.pop(0)
        assert self._first_result_seen.wait(timeout=120), (
            "serve emitted nothing while stdin was still open"
        )
        self.eof_at = time.perf_counter()
        raise StopIteration


class _RecordingStdout:
    """Line-buffering stdout stand-in that timestamps the first record."""

    def __init__(self, first_result_seen):
        self.lines = []
        self.first_at = None
        self._first_result_seen = first_result_seen
        self._buffer = ""

    def write(self, text):
        self._buffer += text
        while "\n" in self._buffer:
            line, self._buffer = self._buffer.split("\n", 1)
            if line.strip():
                if self.first_at is None:
                    self.first_at = time.perf_counter()
                self.lines.append(line)
                self._first_result_seen.set()
        return len(text)

    def flush(self):
        pass


def test_serve_streams_first_result_before_eof(tmp_path, monkeypatch,
                                               bench_sample):
    """`repro serve` on a paced-backend stream emits its first result
    while stdin is still open (the ISSUE's streaming acceptance)."""
    from repro.cli import main
    from repro.sequences.io import references_to_fasta

    fasta = tmp_path / "refs.fasta"
    fasta.write_text(references_to_fasta(bench_sample.references))
    index_path = tmp_path / "world.megis"
    assert main(["index", "build", str(fasta), str(index_path)]) == 0

    chunk = len(bench_sample.reads) // 4
    lines = [
        json.dumps(wire.request_record(f"s{i}", [
            r.sequence for r in bench_sample.reads[i * chunk:(i + 1) * chunk]
        ])) + "\n"
        for i in range(4)
    ]
    first_result_seen = threading.Event()
    stdin = _GatedStdin(lines, first_result_seen)
    stdout = _RecordingStdout(first_result_seen)
    monkeypatch.setenv("REPRO_PACED_MBPS", str(MB_PER_S))
    monkeypatch.setattr("sys.stdin", stdin)
    monkeypatch.setattr("sys.stdout", stdout)
    code = main(["serve", "--index", str(index_path), "--workers", "2",
                 "--backend", "paced", "--abundance", "statistical",
                 "--max-queue", "2"])
    assert code == 0
    records = [json.loads(line) for line in stdout.lines]
    assert {r["id"] for r in records} == {"s0", "s1", "s2", "s3"}
    assert all(r["schema"] == 1 and "candidates" in r for r in records)
    assert stdout.first_at is not None and stdin.eof_at is not None
    assert stdout.first_at < stdin.eof_at, (
        "first result must stream out before stdin EOF"
    )


async def _gateway_client(host, port, requests, gap_s=0.0):
    """One TCP client: JSONL frames in, every record (results, errors,
    drain summaries) collected until the gateway closes the stream."""
    reader, writer = await asyncio.open_connection(host, port)
    records = []

    async def _read():
        while True:
            line = await reader.readline()
            if not line:
                return
            records.append(json.loads(line))

    read_task = asyncio.ensure_future(_read())
    for i, request in enumerate(requests):
        if i and gap_s:
            await asyncio.sleep(gap_s)
        writer.write((json.dumps(request) + "\n").encode("utf-8"))
        await writer.drain()
    writer.write_eof()
    await read_task
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return records


def _gateway_round(session, by_client, gaps=None, rate_limit=None,
                   rate_burst=8.0):
    """One start -> serve -> drain cycle over real localhost TCP."""
    from repro.megis.gateway import AnalysisGateway

    gaps = gaps or [0.0] * len(by_client)

    async def go():
        gateway = AnalysisGateway(session, workers=4, max_batch=4,
                                  rate_limit=rate_limit,
                                  rate_burst=rate_burst)
        host, port = await gateway.start()
        start = time.perf_counter()
        per_client = await asyncio.gather(*(
            _gateway_client(host, port, requests, gap_s=gap)
            for requests, gap in zip(by_client, gaps)
        ))
        elapsed = time.perf_counter() - start
        await gateway.drain()
        return per_client, elapsed, gateway.stats

    return asyncio.run(go())


def _gateway_expectations(session, samples):
    """Serial reference frames (gateway must reproduce them exactly)."""
    from repro.sequences.reads import Read

    expected = {}
    for i, sample in enumerate(samples):
        result = session.analyze([
            Read(read_id=j, sequence=read.sequence, true_taxid=0)
            for j, read in enumerate(sample)
        ])
        expected[f"s{i}"] = (
            sorted(int(t) for t in result.candidates),
            {str(t): f for t, f in sorted(result.profile.fractions.items())},
        )
    requests = [
        wire.request_record(f"s{i}", [read.sequence for read in sample])
        for i, sample in enumerate(samples)
    ]
    return expected, requests


def test_gateway_multiclient_throughput(benchmark, bench_sorted_db,
                                        bench_sketch, bench_sample):
    """Samples/sec through `repro gateway` with four concurrent TCP
    clients (CI artifact row in ``BENCH_serving.json``).

    Every frame is asserted bit-identical to serial ``session.analyze``
    and every client must come out of each round whole — the same
    completion-parity fairness the gateway_qos experiment sweeps."""
    samples = _sample_stream(bench_sample)
    session = _paced_session(bench_sorted_db, bench_sketch)
    expected, requests = _gateway_expectations(session, samples)
    n_clients = 4
    per = N_SAMPLES // n_clients
    by_client = [requests[c * per:(c + 1) * per] for c in range(n_clients)]
    captured = {}

    def serve_round():
        per_client, elapsed, stats = _gateway_round(session, by_client)
        captured["elapsed"] = elapsed
        captured["stats"] = stats
        return per_client

    per_client = benchmark.pedantic(serve_round, rounds=3, iterations=1)
    for client_records in per_client:
        results = [r for r in client_records
                   if "error" not in r and not r.get("event")]
        assert len(results) == per, "every client must come out whole"
        for record in results:
            assert (record["candidates"], record["profile"]) \
                == expected[record["id"]]
    stats = captured["stats"]
    assert stats.requests_admitted == stats.requests_completed == N_SAMPLES
    benchmark.extra_info["clients"] = n_clients
    benchmark.extra_info["n_samples"] = N_SAMPLES
    benchmark.extra_info["samples_per_s"] = round(
        N_SAMPLES / captured["elapsed"], 2
    )


def test_gateway_rate_limit_fairness(benchmark, bench_sorted_db,
                                     bench_sketch, bench_sample):
    """Flooding client under a token bucket: victims untouched, flooder
    sheds into structured ``rate_limited`` frames, nothing is lost.

    The latency comparison across scenarios lives in the gateway_qos
    experiment; this row pins the fairness accounting into the CI
    artifact."""
    samples = _sample_stream(bench_sample)
    session = _paced_session(bench_sorted_db, bench_sketch)
    expected, requests = _gateway_expectations(session, samples)
    per = N_SAMPLES // 4
    flooder_load = [dict(r, id=f"{r['id']}/flood") for r in requests]
    for request in flooder_load:
        expected[request["id"]] = expected[request["id"].split("/")[0]]
    victims = [requests[c * per:(c + 1) * per] for c in range(1, 4)]
    by_client = [flooder_load] + victims
    gaps = [0.0] + [0.05] * len(victims)
    captured = {}

    def serve_round():
        per_client, elapsed, stats = _gateway_round(
            session, by_client, gaps=gaps,
            rate_limit=1.0, rate_burst=float(per + 1),
        )
        captured["elapsed"] = elapsed
        captured["stats"] = stats
        return per_client

    per_client = benchmark.pedantic(serve_round, rounds=2, iterations=1)
    flooder, *victim_records = per_client
    rejected = [r for r in flooder if "error" in r]
    served = [r for r in flooder if "error" not in r and not r.get("event")]
    assert rejected, "the flooder must burn through its burst"
    assert all("rate_limited" in r["error"] for r in rejected)
    assert len(served) + len(rejected) == len(flooder_load)
    for client_records in victim_records:
        results = [r for r in client_records
                   if "error" not in r and not r.get("event")]
        assert len(results) == per, "victims must be untouched by the flood"
        for record in results:
            assert (record["candidates"], record["profile"]) \
                == expected[record["id"]]
    for record in served:
        assert (record["candidates"], record["profile"]) \
            == expected[record["id"]]
    stats = captured["stats"]
    assert stats.rate_limited == len(rejected)
    assert stats.requests_admitted == stats.requests_completed
    benchmark.extra_info["flooder_rejected"] = len(rejected)
    benchmark.extra_info["flooder_served"] = len(served)
    benchmark.extra_info["victim_samples"] = per * len(victims)
    benchmark.extra_info["samples_per_s"] = round(
        (len(served) + per * len(victims)) / captured["elapsed"], 2
    )


def test_cluster_scaling_floor(benchmark):
    """The cluster tier's acceptance floor: a 2-node scatter-gather
    cluster must serve the paced stream >=1.5x faster than 1-node, and
    the kill+replica failure-injection row must complete every request
    through the retry path — all bit-identical (asserted inside the
    experiment, per cell).  The 1/2/4-node sweep plus the failure row
    land in ``BENCH_serving.json``, so cluster scaling is tracked run
    over run like every other serving row."""
    from repro.experiments.cluster_scaling import run as run_cluster

    result = benchmark.pedantic(run_cluster, rounds=1, iterations=1)
    emit(result)
    by_scenario = {r["scenario"]: r for r in result.rows}
    one, two = by_scenario["1-node"], by_scenario["2-node"]
    speedup = two["samples_per_s"] / one["samples_per_s"]
    assert speedup >= 1.5, (
        f"2-node cluster only {speedup:.2f}x over 1-node on the paced "
        f"workload ({one['samples_per_s']:.1f} -> "
        f"{two['samples_per_s']:.1f} samples/s)"
    )
    killed = by_scenario["2-node kill+replica"]
    assert killed["completed"] == one["completed"], (
        "the replica must absorb every request after the kill"
    )
    assert killed["node_retries"] >= 1 and killed["node_failures"] == 0
    for row in result.rows:
        benchmark.extra_info[row["scenario"]] = {
            "samples_per_s": round(row["samples_per_s"], 2),
            "p99_ms": round(row["p99_ms"], 2),
            "node_retries": row["node_retries"],
        }
    benchmark.extra_info["speedup_2_over_1"] = round(speedup, 3)


def test_threaded_sharded_step2_overlaps_streams(bench_sorted_db, bench_kss):
    """ThreadedExecutor shards: identical results, measured overlap > 0.

    Four shards' paced streams run on four threads; the per-shard busy
    time sums to the serial cost while the dispatch window shrinks —
    ``measured_overlap_saved_ms`` is that gap, the wall-clock realization
    of the §6.1 multi-SSD fan-out.
    """
    query = bench_sorted_db.kmers[::3]
    backend = PacedStepTwoBackend("numpy", mb_per_s=MB_PER_S)
    serial = MultiSsdStepTwo(bench_sorted_db, bench_kss, n_ssds=4,
                             backend=backend)
    threaded = MultiSsdStepTwo(bench_sorted_db, bench_kss, n_ssds=4,
                               backend=backend, executor="threads:4")
    expected = serial.run(query)
    best_saved = 0.0
    for _ in range(3):
        result = threaded.run(query)
        assert result[0] == expected[0]
        assert result[1] == expected[1]
        t = threaded.timings
        best_saved = max(best_saved, t.measured_overlap_saved_ms)
    assert serial.timings.measured_overlap_saved_ms < 1e-6
    assert best_saved > 0.0, "threaded shards hid no paced stream time"
