"""Serving benchmarks: AnalysisService throughput and the workers floor.

Pins the structural wins of the concurrent serving API:

- ``AnalysisService(workers=4)`` over the numpy kernels must serve the
  multi-sample workload at >=2x the samples/sec of ``workers=1`` — and
  produce bit-identical results.  Step 2 runs paced (the modeled flash
  stream as real wall time, ``repro.backends.paced``), which is the
  regime the paper's serving story lives in: stream-bound, not
  compute-bound.  The speedup comes from two compounding mechanisms that
  work even on a single CPU core: workers coalesce queued samples into
  §4.7 batches (the stream is paid once per batch) and the paced waits of
  independent batches overlap across threads;
- a ThreadedExecutor-driven sharded Step 2 must reproduce the serial
  multi-SSD result exactly while overlapping the shards' paced streams
  (``measured_overlap_saved_ms > 0``).
"""

import time

import pytest

from repro.backends.paced import PacedStepTwoBackend
from repro.megis.index import MegisIndex
from repro.megis.multissd import MultiSsdStepTwo
from repro.megis.service import AnalysisService
from repro.megis.session import AnalysisSession, MegisConfig

N_SAMPLES = 12
#: Scaled-down stream bandwidth matched to the benchmark database, so the
#: paced stream dominates the way flash streaming dominates at paper scale.
MB_PER_S = 4.0


def _result_signature(result):
    return (
        result.intersecting_kmers,
        sorted(result.candidates),
        sorted(result.profile.fractions.items()),
    )


def _sample_stream(bench_sample):
    chunk = len(bench_sample.reads) // N_SAMPLES
    return [
        bench_sample.reads[i * chunk:(i + 1) * chunk] for i in range(N_SAMPLES)
    ]


def _paced_session(bench_sorted_db, bench_sketch) -> AnalysisSession:
    index = MegisIndex(bench_sorted_db, bench_sketch)
    backend = PacedStepTwoBackend("numpy", mb_per_s=MB_PER_S)
    return AnalysisSession(
        index, MegisConfig(abundance_method="statistical"), backend=backend
    )


def _serve(session, samples, workers):
    with AnalysisService(session, workers=workers) as service:
        start = time.perf_counter()
        futures = service.submit_batch(samples)
        results = [future.result() for future in futures]
        elapsed = time.perf_counter() - start
    return results, elapsed


def test_service_workers_speedup_floor(bench_sorted_db, bench_sketch,
                                       bench_sample):
    """workers=4 must be >=2x samples/sec over workers=1, bit-identically.

    Acceptance floor of the concurrent serving API (typical margin: ~3x
    even on one core; more with real thread parallelism).  Best-of-N on
    both sides so a noisy-neighbor pause cannot flip the verdict.
    """
    samples = _sample_stream(bench_sample)
    expected, _ = _serve(
        _paced_session(bench_sorted_db, bench_sketch), samples, workers=1
    )
    expected_signature = [_result_signature(r) for r in expected]
    assert any(sig[1] for sig in expected_signature), "stream must hit the index"

    serial_s = min(
        _serve(_paced_session(bench_sorted_db, bench_sketch), samples, 1)[1]
        for _ in range(2)
    )
    concurrent_s = float("inf")
    for _ in range(3):
        results, elapsed = _serve(
            _paced_session(bench_sorted_db, bench_sketch), samples, 4
        )
        assert [_result_signature(r) for r in results] == expected_signature
        concurrent_s = min(concurrent_s, elapsed)

    speedup = serial_s / concurrent_s
    assert speedup >= 2.0, (
        f"AnalysisService(workers=4) only {speedup:.2f}x over workers=1 "
        f"({N_SAMPLES / serial_s:.1f} -> {N_SAMPLES / concurrent_s:.1f} "
        f"samples/s)"
    )


@pytest.mark.parametrize("workers", [1, 4])
def test_service_throughput(benchmark, bench_sorted_db, bench_sketch,
                            bench_sample, workers):
    """Samples/sec through the service at each worker count (CI artifact)."""
    samples = _sample_stream(bench_sample)
    session = _paced_session(bench_sorted_db, bench_sketch)

    def serve_stream():
        results, _ = _serve(session, samples, workers)
        return results

    results = benchmark.pedantic(serve_stream, rounds=3, iterations=1)
    assert all(r.candidates is not None for r in results)


def test_threaded_sharded_step2_overlaps_streams(bench_sorted_db, bench_kss):
    """ThreadedExecutor shards: identical results, measured overlap > 0.

    Four shards' paced streams run on four threads; the per-shard busy
    time sums to the serial cost while the dispatch window shrinks —
    ``measured_overlap_saved_ms`` is that gap, the wall-clock realization
    of the §6.1 multi-SSD fan-out.
    """
    query = bench_sorted_db.kmers[::3]
    backend = PacedStepTwoBackend("numpy", mb_per_s=MB_PER_S)
    serial = MultiSsdStepTwo(bench_sorted_db, bench_kss, n_ssds=4,
                             backend=backend)
    threaded = MultiSsdStepTwo(bench_sorted_db, bench_kss, n_ssds=4,
                               backend=backend, executor="threads:4")
    expected = serial.run(query)
    best_saved = 0.0
    for _ in range(3):
        result = threaded.run(query)
        assert result[0] == expected[0]
        assert result[1] == expected[1]
        t = threaded.timings
        best_saved = max(best_saved, t.measured_overlap_saved_ms)
    assert serial.timings.measured_overlap_saved_ms < 1e-6
    assert best_saved > 0.0, "threaded shards hid no paced stream time"
