"""Diff two pytest-benchmark JSON artifacts (``BENCH_*.json``).

CI uploads one ``BENCH_*.json`` per benchmark suite; this helper turns a
pair of them — say, last week's artifact and today's — into a
per-benchmark comparison table so a serving or kernel regression is a
one-command diff instead of manual JSON spelunking:

    python benchmarks/bench_compare.py OLD.json NEW.json [--threshold 1.25]

Benchmarks are matched by full name (which includes parametrization, so
``threads:4`` and ``processes:4`` substrate rows compare independently).
The exit status is the regression verdict: 0 when every benchmark present
in both files stayed under ``threshold`` x its old mean, 1 otherwise —
usable directly as a CI gate.  Benchmarks present in only one file are
reported as added/removed, and a zero-mean baseline (sub-resolution
timer) as unmeasurable — never as regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional


def load_benchmarks(path) -> Dict[str, dict]:
    """Benchmarks from one pytest-benchmark JSON file, keyed by name."""
    payload = json.loads(Path(path).read_text())
    out: Dict[str, dict] = {}
    for bench in payload.get("benchmarks", []):
        out[bench["name"]] = {
            "mean_s": float(bench["stats"]["mean"]),
            "stddev_s": float(bench["stats"].get("stddev", 0.0)),
            "extra_info": bench.get("extra_info", {}),
        }
    return out


def compare(old: Dict[str, dict], new: Dict[str, dict]) -> List[dict]:
    """Per-benchmark comparison rows, sorted worst regression first.

    ``ratio`` is new mean / old mean (>1 = slower).  Added/removed
    benchmarks carry ``ratio=None`` and a matching ``status``, and so
    does a zero-mean baseline (a timer too coarse to measure the old
    run): no finite ratio exists, so the row is ``"unmeasurable"`` and
    never trips the regression gate.
    """
    rows: List[dict] = []
    for name in sorted(set(old) | set(new)):
        before, after = old.get(name), new.get(name)
        if before is None:
            rows.append({"name": name, "old_mean_s": None,
                         "new_mean_s": after["mean_s"], "ratio": None,
                         "status": "added"})
        elif after is None:
            rows.append({"name": name, "old_mean_s": before["mean_s"],
                         "new_mean_s": None, "ratio": None,
                         "status": "removed"})
        elif before["mean_s"] <= 0:
            rows.append({"name": name, "old_mean_s": before["mean_s"],
                         "new_mean_s": after["mean_s"], "ratio": None,
                         "status": "unmeasurable"})
        else:
            ratio = after["mean_s"] / before["mean_s"]
            rows.append({
                "name": name, "old_mean_s": before["mean_s"],
                "new_mean_s": after["mean_s"], "ratio": ratio,
                "status": "slower" if ratio > 1.0 else "faster",
            })
    rows.sort(key=lambda r: -(r["ratio"] if r["ratio"] is not None else 0.0))
    return rows


def regressions(rows: List[dict], threshold: float) -> List[dict]:
    """Rows whose new mean exceeds ``threshold`` x the old mean."""
    return [
        row for row in rows
        if row["ratio"] is not None and row["ratio"] > threshold
    ]


def format_rows(rows: List[dict]) -> str:
    def _ms(value: Optional[float]) -> str:
        return f"{value * 1e3:.3f}" if value is not None else "-"

    lines = [f"{'benchmark':<60} {'old ms':>10} {'new ms':>10} "
             f"{'ratio':>7}  status"]
    for row in rows:
        ratio = f"{row['ratio']:.2f}x" if row["ratio"] is not None else "-"
        lines.append(
            f"{row['name']:<60} {_ms(row['old_mean_s']):>10} "
            f"{_ms(row['new_mean_s']):>10} {ratio:>7}  {row['status']}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two pytest-benchmark JSON artifacts; exit 1 on "
                    "regression past the threshold.",
    )
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=1.25,
        help="regression gate: fail when a new mean exceeds this multiple "
             "of the old mean (default 1.25)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="comparison table as text or as one JSON document (the "
             "repro.reporting.render_json dialect `repro check` also "
             "emits; default: text)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error(f"--threshold must be positive, got {args.threshold}")
    rows = compare(load_benchmarks(args.old), load_benchmarks(args.new))
    failed = regressions(rows, args.threshold)
    if args.format == "json":
        from repro.reporting import render_json

        print(render_json({
            "threshold": args.threshold,
            "rows": rows,
            "regressions": [row["name"] for row in failed],
        }))
        return 1 if failed else 0
    print(format_rows(rows))
    if failed:
        print(f"\n{len(failed)} benchmark(s) regressed past "
              f"{args.threshold:.2f}x:")
        for row in failed:
            print(f"  {row['name']}: {row['ratio']:.2f}x")
        return 1
    print(f"\nno regressions past {args.threshold:.2f}x "
          f"({len(rows)} benchmark(s) compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
