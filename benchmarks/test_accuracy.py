"""Benchmark: the functional accuracy comparison (F1 / L1, §5-§6.1).

This is the one benchmark that exercises the *functional* pipelines
(Kraken2, Metalign, MegIS) end to end rather than the analytic model, so
it runs a single round.
"""

from benchmarks.conftest import emit
from repro.experiments.accuracy import run


def test_accuracy(benchmark):
    result = benchmark.pedantic(lambda: run(n_reads=300), rounds=1, iterations=1)
    emit(result)
    rows = {(r["sample"], r["tool"]): r for r in result.rows}
    for sample in ("CAMI-L", "CAMI-M", "CAMI-H"):
        assert rows[(sample, "MegIS")]["matches_aopt"] is True
        assert rows[(sample, "A-Opt")]["f1"] > rows[(sample, "P-Opt")]["f1"]
