"""Benchmark: MegIS FTL metadata-size ablation (§4.5)."""

from benchmarks.conftest import emit
from repro.experiments.ftl_metadata import run


def test_ftl_metadata(benchmark):
    result = benchmark(run)
    emit(result)
    rows = {r["quantity"]: r for r in result.rows}
    assert rows["megis_total"]["fraction_of_baseline"] < 0.001
