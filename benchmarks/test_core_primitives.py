"""Microbenchmarks of the core in-storage primitives.

These time the functional building blocks themselves (not the analytic
model): the per-channel Intersect merge, KSS streaming retrieval vs
pointer-chasing tree lookups, the Step-2 backends (python reference vs
numpy columnar), Step-1 bucket partitioning, and the channel-level NAND
timing simulation.
"""

import time

import pytest

from repro.backends import get_backend
from repro.databases.sketch import TernarySearchTree
from repro.databases.sorted_db import SortedKmerDatabase
from repro.megis.host import KmerBucketPartitioner
from repro.megis.isp import IntersectUnit, IspStepTwo, TaxIdRetriever
from repro.sequences.kmers import extract_kmers
from repro.ssd.channel import AccessPattern, ChannelSimulator
from repro.ssd.config import ssd_c
from benchmarks.conftest import BENCH_K


def test_intersect_unit_merge(benchmark, bench_sorted_db):
    db = bench_sorted_db.kmers
    query = db[::3]

    def merge():
        return IntersectUnit(channel=0).intersect(db, query)

    result = benchmark(merge)
    assert result == query


def test_kss_streaming_retrieval(benchmark, bench_kss, bench_sketch):
    queries = sorted(bench_sketch.tables[BENCH_K])[::2]

    def retrieve():
        return TaxIdRetriever(bench_kss).retrieve(queries)

    result = benchmark(retrieve)
    assert len(result) == len(queries)


def test_ternary_tree_lookups(benchmark, bench_sketch):
    tree = TernarySearchTree(bench_sketch)
    queries = sorted(bench_sketch.tables[BENCH_K])[::2]

    def lookup_all():
        return [tree.lookup(q) for q in queries]

    results = benchmark(lookup_all)
    assert len(results) == len(queries)


def test_bucket_partitioning(benchmark, bench_sample):
    partitioner = KmerBucketPartitioner(k=BENCH_K, n_buckets=16)

    def partition():
        return partitioner.partition(bench_sample.reads)

    bucket_set = benchmark(partition)
    assert bucket_set.total_kmers() > 0


def test_kmer_extraction(benchmark, bench_sample):
    genome = bench_sample.references.sequence(
        bench_sample.references.species_taxids[0]
    )

    def extract():
        return extract_kmers(genome, BENCH_K)

    kmers = benchmark(extract)
    assert kmers.size == len(genome) - BENCH_K + 1


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_step2_intersect_backend(benchmark, bench_sorted_db, backend):
    query = bench_sorted_db.kmers[::3]
    engine = get_backend(backend)
    bench_sorted_db.column()  # columnar cache built outside the timed region

    def intersect():
        return engine.intersect(bench_sorted_db, query, n_channels=8)

    result = benchmark(intersect)
    assert result == query


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_step2_retrieval_backend(benchmark, bench_kss, bench_sketch, backend):
    queries = sorted(bench_sketch.tables[BENCH_K])[::2]
    engine = get_backend(backend)
    bench_kss.columns()

    def retrieve():
        return engine.retrieve(bench_kss, queries)

    result = benchmark(retrieve)
    assert len(result) == len(queries)


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_step2_multi_sample_batched(benchmark, bench_sorted_db, bench_kss,
                                    bench_sample, backend):
    partitioner = KmerBucketPartitioner(k=BENCH_K, n_buckets=8)
    samples = [
        [
            (b.lo, b.hi, b.kmers)
            for b in partitioner.partition(reads).buckets
        ]
        for reads in (bench_sample.reads[:300], bench_sample.reads[300:])
    ]
    isp = IspStepTwo(bench_sorted_db, bench_kss, n_channels=8, backend=backend)

    def batched():
        return isp.run_bucketed_multi(samples)

    results = benchmark(batched)
    assert len(results) == 2 and all(r[0] for r in results)


def test_numpy_backend_speedup_floor():
    """The vectorized backend must beat the reference by >= 5x on Step 2.

    Uses a synthetic sorted database large enough that interpreter overhead
    dominates the reference merge — the regime the backend exists to fix.
    """
    n = 200_000
    kmers = list(range(1, 3 * n, 3))
    database = SortedKmerDatabase(BENCH_K, kmers, [frozenset({1})] * len(kmers))
    query = kmers[::2]
    database.column()

    python, numpy = get_backend("python"), get_backend("numpy")
    expected = numpy.intersect(database, query, n_channels=8)
    assert expected == python.intersect(database, query, n_channels=8)

    # Best-of-N on both sides so a noisy-neighbor pause in any single run
    # cannot flip the verdict on shared CI runners (typical margin: >25x).
    python_s = min(
        _timed(lambda: python.intersect(database, query, n_channels=8))
        for _ in range(3)
    )
    numpy_s = min(
        _timed(lambda: numpy.intersect(database, query, n_channels=8))
        for _ in range(5)
    )
    speedup = python_s / numpy_s
    assert speedup >= 5.0, f"numpy backend only {speedup:.1f}x over python"


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_channel_simulation_sequential(benchmark):
    config = ssd_c()
    sim = ChannelSimulator(config.geometry, config.t_read_us, config.channel_bw)

    def simulate():
        return sim.measure_bandwidth(AccessPattern.SEQUENTIAL, n_requests=1024)

    bandwidth = benchmark(simulate)
    assert bandwidth > 0.8 * config.internal_read_bw
