"""Microbenchmarks of the core in-storage primitives.

These time the functional building blocks themselves (not the analytic
model): the per-channel Intersect merge, KSS streaming retrieval vs
pointer-chasing tree lookups, Step-1 bucket partitioning, and the
channel-level NAND timing simulation.
"""

import pytest

from repro.databases.sketch import TernarySearchTree
from repro.megis.host import KmerBucketPartitioner
from repro.megis.isp import IntersectUnit, TaxIdRetriever
from repro.sequences.kmers import extract_kmers
from repro.ssd.channel import AccessPattern, ChannelSimulator
from repro.ssd.config import ssd_c
from benchmarks.conftest import BENCH_K


def test_intersect_unit_merge(benchmark, bench_sorted_db):
    db = bench_sorted_db.kmers
    query = db[::3]

    def merge():
        return IntersectUnit(channel=0).intersect(db, query)

    result = benchmark(merge)
    assert result == query


def test_kss_streaming_retrieval(benchmark, bench_kss, bench_sketch):
    queries = sorted(bench_sketch.tables[BENCH_K])[::2]

    def retrieve():
        return TaxIdRetriever(bench_kss).retrieve(queries)

    result = benchmark(retrieve)
    assert len(result) == len(queries)


def test_ternary_tree_lookups(benchmark, bench_sketch):
    tree = TernarySearchTree(bench_sketch)
    queries = sorted(bench_sketch.tables[BENCH_K])[::2]

    def lookup_all():
        return [tree.lookup(q) for q in queries]

    results = benchmark(lookup_all)
    assert len(results) == len(queries)


def test_bucket_partitioning(benchmark, bench_sample):
    partitioner = KmerBucketPartitioner(k=BENCH_K, n_buckets=16)

    def partition():
        return partitioner.partition(bench_sample.reads)

    bucket_set = benchmark(partition)
    assert bucket_set.total_kmers() > 0


def test_kmer_extraction(benchmark, bench_sample):
    genome = bench_sample.references.sequence(
        bench_sample.references.species_taxids[0]
    )

    def extract():
        return extract_kmers(genome, BENCH_K)

    kmers = benchmark(extract)
    assert kmers.size == len(genome) - BENCH_K + 1


def test_channel_simulation_sequential(benchmark):
    config = ssd_c()
    sim = ChannelSimulator(config.geometry, config.t_read_us, config.channel_bw)

    def simulate():
        return sim.measure_bandwidth(AccessPattern.SEQUENTIAL, n_requests=1024)

    bandwidth = benchmark(simulate)
    assert bandwidth > 0.8 * config.internal_read_bw
