"""Columnar-dataflow benchmarks: native bucket columns and sharded Step 2.

Pins the structural wins of the columnar refactor:

- Step 1 emits ndarray bucket columns natively, so the numpy Step-2 engine
  streams them with zero per-call conversion — enforced as a hard >=2x
  end-to-end floor against the list-bucket hand-off the engine previously
  received (which re-converted every bucket on every call);
- sharded (multi-SSD) Step 2 runs through the backend's
  ``intersect_sharded`` kernels, benchmarked for both backends against the
  single-SSD result it must reproduce bit for bit;
- KSS retrieval emits CSR owner columns and hit accumulation + containment
  run as ``np.unique``/array expressions — enforced as a hard >=3x
  retrieval+accumulate floor for the numpy engine over the register-level
  reference on the same inputs (typical margin: >10x);
- a cold-opened ``MegisIndex`` serves its first query straight off the
  persisted CSR sections — zero column rebuilds and zero ``KssTables``
  row-object materializations, asserted via the cache-build counters.
"""

import random
import time
from bisect import bisect_left

import numpy as np
import pytest

from repro.backends import get_backend
from repro.backends.numpy_backend import as_column
from repro.databases.kss import KssTables
from repro.databases.sorted_db import SortedKmerDatabase
from repro.experiments.backend_scaling import synthetic_sketch
from repro.megis.host import KmerBucketPartitioner
from repro.megis.isp import IspStepTwo
from repro.megis.multissd import MultiSsdStepTwo
from repro.tools.metalign import accumulate_hits, select_candidates
from benchmarks.conftest import BENCH_K

N_BUCKETS = 16


def _partitioned_query(n_db=100_000, n_query=1_000_000):
    """A sorted database plus one query pre-partitioned into buckets twice:
    once as Python lists (the PR 1 hand-off) and once as native ndarray
    columns (the columnar hand-off).  ~10% of queries hit the database."""
    db_kmers = list(range(0, 10 * n_db, 10))
    database = SortedKmerDatabase(BENCH_K, db_kmers, [frozenset({1})] * n_db)
    database.column()
    query = [x * 10 + (0 if x % 10 == 0 else 3) for x in range(n_query)]
    edges = (
        [0]
        + [10 * n_db * i // N_BUCKETS for i in range(1, N_BUCKETS)]
        + [1 << (2 * BENCH_K)]
    )
    column = as_column(query, database.column().dtype)
    list_buckets, column_buckets = [], []
    for lo, hi in zip(edges, edges[1:]):
        i, j = bisect_left(query, lo), bisect_left(query, hi)
        list_buckets.append((lo, hi, query[i:j]))
        column_buckets.append((lo, hi, column[i:j]))
    return database, list_buckets, column_buckets


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_columnar_buckets_speedup_floor():
    """Native bucket columns must be >=2x faster than PR 1's list buckets.

    Same partitioned query either way; the only difference is the bucket
    container, so the gap is exactly the partition->intersect conversion
    cost the columnar dataflow removes (typical margin: >3x).
    """
    database, list_buckets, column_buckets = _partitioned_query()
    engine = get_backend("numpy")
    expected = engine.intersect_bucketed(database, column_buckets, 8)
    assert expected == engine.intersect_bucketed(database, list_buckets, 8)

    # Best-of-N on both sides so a noisy-neighbor pause in any single run
    # cannot flip the verdict on shared CI runners.
    list_s = min(
        _timed(lambda: engine.intersect_bucketed(database, list_buckets, 8))
        for _ in range(3)
    )
    column_s = min(
        _timed(lambda: engine.intersect_bucketed(database, column_buckets, 8))
        for _ in range(5)
    )
    speedup = list_s / column_s
    assert speedup >= 2.0, (
        f"columnar buckets only {speedup:.2f}x over list buckets"
    )


def test_partitioner_emits_native_columns(bench_sample):
    """The numpy-backend partitioner's hand-off is zero-copy end to end."""
    columnar = KmerBucketPartitioner(
        k=BENCH_K, n_buckets=8, backend="numpy"
    ).partition(bench_sample.reads)
    assert all(isinstance(b.kmers, np.ndarray) for b in columnar.buckets)
    largest = max(columnar.buckets, key=lambda b: len(b.kmers))
    # as_column on a native column is the identity - no conversion happens
    # anywhere between Step 1 and the intersect kernels.
    assert as_column(largest.kmers, largest.kmers.dtype) is largest.kmers
    lists = KmerBucketPartitioner(
        k=BENCH_K, n_buckets=8, backend="python"
    ).partition(bench_sample.reads)
    assert lists.merged_sorted() == columnar.merged_sorted()


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_columnar_partition_intersect(benchmark, bench_sorted_db, bench_sample,
                                      backend):
    """End-to-end Step 1 -> Step 2 in each backend's native containers."""
    engine = get_backend("numpy")
    bench_sorted_db.column()
    partitioner = KmerBucketPartitioner(k=BENCH_K, n_buckets=16, backend=backend)

    def partition_then_intersect():
        buckets = partitioner.partition(bench_sample.reads)
        return engine.intersect_bucketed(
            bench_sorted_db, [(b.lo, b.hi, b.kmers) for b in buckets.buckets], 8
        )

    result = benchmark(partition_then_intersect)
    assert result


def _retrieval_world(n_db=80_000, n_query=40_000, seed=5):
    """A synthetic KSS + sketch + sorted query hitting every database k-mer.

    Owners are realistic multi-taxID sets (1-4 of 64 species) over k-mers
    spread across the whole key space, so prefix groups stay small and
    duplicate taxIDs recur across queries — the regime the CSR retrieval
    and ``np.unique`` accumulation kernels target.
    """
    rng = random.Random(seed)
    kmers = sorted(rng.sample(range(1 << (2 * BENCH_K)), n_db))
    owners = [
        frozenset(rng.sample(range(1000, 1064), rng.randint(1, 4)))
        for _ in kmers
    ]
    sketch = synthetic_sketch(kmers, owners, k_max=BENCH_K)
    kss = KssTables(sketch)
    kss.columns()
    queries = kmers[:: max(1, n_db // n_query)]
    return sketch, kss, queries


def _retrieve_accumulate(backend, sketch, kss, queries):
    """The full owner path: KSS retrieval -> hit accumulation -> candidates."""
    retrieved = get_backend(backend).retrieve(kss, queries)
    hits = accumulate_hits(retrieved)
    return hits.as_dict(), select_candidates(sketch, hits, 0.15)


def test_retrieval_accumulate_speedup_floor():
    """CSR retrieval + vectorized accumulation must be >=3x the reference.

    Same queries, same KSS; the numpy engine answers each level with one
    searchsorted + CSR gather and folds hits with one np.unique pass per
    level, where the register-level reference walks every (query, taxID)
    pair in the interpreter.  Results must stay bit-identical.
    """
    sketch, kss, queries = _retrieval_world()
    expected = _retrieve_accumulate("python", sketch, kss, queries)
    assert _retrieve_accumulate("numpy", sketch, kss, queries) == expected
    assert expected[1], "candidate set empty - the world is degenerate"

    # Best-of-N on both sides so a noisy-neighbor pause in any single run
    # cannot flip the verdict on shared CI runners.
    python_s = min(
        _timed(lambda: _retrieve_accumulate("python", sketch, kss, queries))
        for _ in range(3)
    )
    numpy_s = min(
        _timed(lambda: _retrieve_accumulate("numpy", sketch, kss, queries))
        for _ in range(5)
    )
    speedup = python_s / numpy_s
    assert speedup >= 3.0, (
        f"columnar retrieval+accumulate only {speedup:.2f}x over the reference"
    )


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_retrieval_accumulate_scaling(benchmark, backend):
    """Retrieval+accumulate wall time per backend on the synthetic world."""
    sketch, kss, queries = _retrieval_world(n_db=30_000, n_query=15_000)
    sketch_hits, candidates = benchmark(
        lambda: _retrieve_accumulate(backend, sketch, kss, queries)
    )
    assert sketch_hits and candidates


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_sharded_step2(benchmark, bench_sorted_db, bench_kss, backend):
    """Multi-SSD Step 2 through the backend's intersect_sharded kernel."""
    query = bench_sorted_db.kmers[::3]
    single = IspStepTwo(bench_sorted_db, bench_kss, n_channels=8,
                        backend=backend).run(query)
    engine = MultiSsdStepTwo(bench_sorted_db, bench_kss, n_ssds=4,
                             channels_per_ssd=8, backend=backend)

    result = benchmark(lambda: engine.run(query))
    assert result[0] == single[0]
    assert result[1] == single[1]


def test_index_cold_open_serves_without_rebuild(bench_sample):
    """Open + first query must not rebuild CSR columns or touch KSS rows.

    The persisted sections become the live caches: the sorted database's
    k-mer/owner columns, the KSS per-level CSR blocks, and the shard
    handles (zero-copy slices of the stitched parent) all come straight
    from the file, so the first — and every following — ``analyze()`` on
    the numpy backend runs without a single cache (re)construction or
    ``KssTables`` row-object materialization.
    """
    from repro.megis.index import IndexBuilder, MegisIndex
    from repro.megis.session import AnalysisSession, MegisConfig

    index = IndexBuilder(k=BENCH_K, smaller_ks=(12, 8), sketch_fraction=0.3).build(
        bench_sample.references
    )
    payload = index.to_bytes(n_shards=2)

    opened = MegisIndex.from_bytes(payload)
    assert opened.database.column_builds == 0
    assert opened.database.owner_column_builds == 0
    assert opened.kss.column_builds == 0
    assert opened.kss.row_materializations == 0

    session = AnalysisSession(
        opened,
        MegisConfig(backend="numpy", abundance_method="statistical", n_ssds=2),
    )
    first = session.analyze(bench_sample.reads)
    second = session.analyze(bench_sample.reads)
    assert first.candidates
    assert first.candidates == second.candidates
    assert first.profile.fractions == second.profile.fractions

    # Zero reconstruction: not at open, not at first query, not between
    # consecutive queries — on the parent or on any shard handle.
    assert opened.database.column_builds == 0
    assert opened.database.owner_column_builds == 0
    assert opened.kss.column_builds == 0
    assert opened.kss.row_materializations == 0
    for shard in opened.shards(2):
        assert shard.database.column_builds == 0
        assert shard.database.owner_column_builds == 0
        assert shard.kss.column_builds == 0
        assert shard.kss.row_materializations == 0


def test_index_cold_open_beats_rebuild(bench_sample):
    """Cold-opening the persisted index must beat rebuilding the databases.

    Generous 2x floor (typical margin: >10x) — the point is structural:
    open attaches columns, rebuild re-derives the sketch, the KSS rows,
    and every CSR block from the references.
    """
    from repro.megis.index import IndexBuilder, MegisIndex

    builder = IndexBuilder(k=BENCH_K, smaller_ks=(12, 8), sketch_fraction=0.3)
    index = builder.build(bench_sample.references)
    payload = index.to_bytes(n_shards=2)

    def rebuild():
        fresh = builder.build(bench_sample.references)
        fresh.kss.store()  # the columnar state open() gets for free
        return fresh

    rebuild_s = min(_timed(rebuild) for _ in range(3))
    open_s = min(_timed(lambda: MegisIndex.from_bytes(payload)) for _ in range(5))
    speedup = rebuild_s / open_s
    assert speedup >= 2.0, f"cold open only {speedup:.2f}x over rebuilding"


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_sharded_multi_sample_batched(benchmark, bench_sorted_db, bench_kss,
                                      bench_sample, backend):
    """Batched multi-sample Step 2 across shards (§4.7 x §6.1)."""
    partitioner = KmerBucketPartitioner(k=BENCH_K, n_buckets=8, backend=backend)
    samples = [
        [(b.lo, b.hi, b.kmers) for b in partitioner.partition(reads).buckets]
        for reads in (bench_sample.reads[:300], bench_sample.reads[300:])
    ]
    single = IspStepTwo(bench_sorted_db, bench_kss,
                        backend=backend).run_bucketed_multi(samples)
    engine = MultiSsdStepTwo(bench_sorted_db, bench_kss, n_ssds=4,
                             backend=backend)

    results = benchmark(lambda: engine.run_multi(samples))
    assert results == single
