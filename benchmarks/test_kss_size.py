"""Benchmark: KSS vs ternary tree vs flat tables size comparison (§4.3.2)."""

from benchmarks.conftest import emit
from repro.experiments.kss_size import run


def test_kss_size(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    measured = next(r for r in result.rows if r["scope"] == "measured")
    assert measured["flat_over_kss"] > 1.0
