"""Benchmark: regenerate Fig 21 (multi-sample analysis)."""

from benchmarks.conftest import emit
from repro.experiments.fig21_multisample import run


def test_fig21_multisample(benchmark):
    result = benchmark(run)
    emit(result)
    last = [r for r in result.rows if r["n_samples"] == 16]
    assert all(r["MS_vs_P-Opt"] > 15 for r in last)  # paper: up to 37.2x
