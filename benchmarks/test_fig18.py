"""Benchmark: regenerate Fig 18 (system cost efficiency)."""

from benchmarks.conftest import emit
from repro.experiments.fig18_cost import run


def test_fig18_cost(benchmark):
    result = benchmark(run)
    emit(result)
    gmean = next(r for r in result.rows if r["sample"] == "GMean")
    assert gmean["MS_C"] > 1.0  # cheap MegIS beats rich P-Opt
