"""Benchmark: regenerate Fig 15 (number-of-SSDs sweep)."""

from benchmarks.conftest import emit
from repro.experiments.fig15_nssd import run


def test_fig15_nssd(benchmark):
    result = benchmark(run)
    emit(result)
    for ssd in ("SSD-C", "SSD-P"):
        series = [r["MS"] for r in result.rows if r["ssd"] == ssd]
        assert min(series) > 3.0  # remains high up to 8 SSDs
