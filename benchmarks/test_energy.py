"""Benchmark: regenerate the §6.5 energy and data-movement analysis."""

from benchmarks.conftest import emit
from repro.experiments.energy import run


def test_energy(benchmark):
    result = benchmark(run)
    emit(result)
    for row in result.rows:
        assert row["reduction_vs_P"] > 2.5
        assert row["io_red_vs_A"] > 50
