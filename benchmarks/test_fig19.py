"""Benchmark: regenerate Fig 19 (PIM-accelerated baseline comparison)."""

from benchmarks.conftest import emit
from repro.experiments.fig19_pim import run


def test_fig19_pim(benchmark):
    result = benchmark(run)
    emit(result)
    assert all(row["ms_speedup"] > 1.0 for row in result.rows)
