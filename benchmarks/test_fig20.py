"""Benchmark: regenerate Fig 20 (abundance-estimation speedups)."""

from benchmarks.conftest import emit
from repro.experiments.fig20_abundance import run


def test_fig20_abundance(benchmark):
    result = benchmark(run)
    emit(result)
    for row in result.rows:
        assert row["MS"] > row["MS-NIdx"] > row["A-Opt"]
