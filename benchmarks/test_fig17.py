"""Benchmark: regenerate Fig 17 (internal-bandwidth sweep via channels)."""

from benchmarks.conftest import emit
from repro.experiments.fig17_channels import run


def test_fig17_channels(benchmark):
    result = benchmark(run)
    emit(result)
    for ssd in ("SSD-C", "SSD-P"):
        series = [r["MS_vs_A-Opt"] for r in result.rows if r["ssd"] == ssd]
        assert series == sorted(series)
