"""Benchmark: regenerate Fig 13 (time breakdown, CAMI-L)."""

from benchmarks.conftest import emit
from repro.experiments.fig13_breakdown import run


def test_fig13_breakdown(benchmark):
    result = benchmark(run)
    emit(result)
    rows = {(r["ssd"], r["config"]): r for r in result.rows}
    for ssd in ("SSD-C", "SSD-P"):
        assert rows[(ssd, "MS")]["total"] < rows[(ssd, "A-Opt")]["total"]
