"""Benchmark fixtures: shared sample and databases, printed tables.

Each ``test_figXX.py`` benchmark regenerates one paper figure/table via the
experiment harness; running with ``--benchmark-only -s`` also prints the
reproduced rows so the harness doubles as the artifact generator.
"""

from __future__ import annotations

import pytest

from repro.databases.kss import KssTables
from repro.databases.sketch import SketchDatabase
from repro.databases.sorted_db import SortedKmerDatabase
from repro.workloads.cami import CamiDiversity, make_cami_sample

BENCH_K = 20


@pytest.fixture(scope="session")
def bench_sample():
    return make_cami_sample(
        CamiDiversity.MEDIUM, n_reads=600, n_genera=4, species_per_genus=3,
        genome_length=2000, seed=21,
    )


@pytest.fixture(scope="session")
def bench_sorted_db(bench_sample):
    return SortedKmerDatabase.build(bench_sample.references, k=BENCH_K)


@pytest.fixture(scope="session")
def bench_sketch(bench_sample):
    return SketchDatabase.build(
        bench_sample.references, k_max=BENCH_K, smaller_ks=(12, 8), sketch_fraction=0.3
    )


@pytest.fixture(scope="session")
def bench_kss(bench_sketch):
    return KssTables(bench_sketch)


def emit(result) -> None:
    """Print the reproduced table under -s."""
    print()
    print(result.format_table())
