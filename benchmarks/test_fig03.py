"""Benchmark: regenerate Fig 3 (R-Qry/S-Qry I/O-overhead motivation)."""

from benchmarks.conftest import emit
from repro.experiments.fig03_motivation import run


def test_fig03_motivation(benchmark):
    result = benchmark(run)
    emit(result)
    for row in result.rows:
        assert row["SSD-C"] < row["SSD-P"] <= 1.0
