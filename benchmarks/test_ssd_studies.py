"""Benchmarks: SSD-internals studies (overprovisioning, random-read QoS)."""

from benchmarks.conftest import emit
from repro.experiments.overprovisioning import run as run_overprovisioning
from repro.experiments.random_read_latency import run as run_random_read


def test_overprovisioning(benchmark):
    result = benchmark.pedantic(run_overprovisioning, rounds=1, iterations=1)
    emit(result)
    achieved = [r["achieved_gbps"] for r in result.rows]
    assert achieved == sorted(achieved, reverse=True)


def test_random_read_latency(benchmark):
    result = benchmark.pedantic(run_random_read, rounds=1, iterations=1)
    emit(result)
    for ssd in ("SSD-C", "SSD-P"):
        p99 = [r["p99_us"] for r in result.rows if r["ssd"] == ssd]
        assert p99 == sorted(p99)
