"""Benchmark: regenerate Fig 16 (host-DRAM-capacity sweep)."""

from benchmarks.conftest import emit
from repro.experiments.fig16_dram import run


def test_fig16_dram(benchmark):
    result = benchmark(run)
    emit(result)
    for ssd in ("SSD-C", "SSD-P"):
        series = [r["MS"] for r in result.rows if r["ssd"] == ssd]
        assert series == sorted(series)  # speedup grows as DRAM shrinks
