"""Benchmark: regenerate Fig 12 (presence/absence speedups, 7 configs)."""

from benchmarks.conftest import emit
from repro.experiments.fig12_speedup import run


def test_fig12_speedup(benchmark):
    result = benchmark(run)
    emit(result)
    gmeans = {r["ssd"]: r for r in result.rows if r["sample"] == "GMean"}
    # Paper: 5.3-6.4x (SSD-C) and 2.7-6.5x (SSD-P) over P-Opt.
    assert 4.0 < gmeans["SSD-C"]["MS"] < 8.0
    assert 2.0 < gmeans["SSD-P"]["MS"] < 7.0
