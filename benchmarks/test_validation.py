"""Benchmark: the full headline-target validation sweep."""

from repro.perf.validation import format_validation_report, validate


def test_validation_sweep(benchmark):
    rows = benchmark(validate)
    print()
    print(format_validation_report(rows))
    assert all(row.in_band for row in rows)
