#!/usr/bin/env python
"""Design-space exploration with the SSD simulator and timing model.

Walks the hardware knobs the paper sweeps — channel count (Fig 17), number
of SSDs (Fig 15), host DRAM (Fig 16) — and also demonstrates the
channel-level simulation behind the motivation: sequential striped reads
saturate the internal buses while random probing collapses throughput
(§2.3, §3.3).
"""

from repro.perf.specs import baseline_system
from repro.perf.timing import TimingModel
from repro.ssd.channel import AccessPattern, ChannelSimulator
from repro.ssd.config import GB, ssd_c, ssd_p
from repro.workloads.datasets import cami_spec


def main() -> None:
    print("internal bandwidth: sequential striping vs random probing")
    for config in (ssd_c(), ssd_p()):
        sim = ChannelSimulator(config.geometry, config.t_read_us, config.channel_bw)
        seq = sim.measure_bandwidth(AccessPattern.SEQUENTIAL)
        rnd = sim.measure_bandwidth(AccessPattern.RANDOM)
        print(f"  {config.name}: sequential {seq / 1e9:5.1f} GB/s, "
              f"random {rnd / 1e9:5.1f} GB/s "
              f"({seq / rnd:.1f}x gap; external is {config.seq_read_bw / 1e9:.1f} GB/s)")

    dataset = cami_spec("CAMI-M")

    print("\nchannel sweep (MegIS time, CAMI-M):")
    for base in (ssd_c(), ssd_p()):
        sweep = (4, 8, 16) if base.name == "SSD-C" else (8, 16, 32)
        for channels in sweep:
            model = TimingModel(baseline_system(base).with_channels(channels), dataset)
            ms = model.megis("ms").total_seconds
            print(f"  {base.name} {channels:2d}ch: {ms:7.1f} s")

    print("\nSSD-count sweep (speedup over P-Opt, SSD-C):")
    for n in (1, 2, 4, 8):
        model = TimingModel(baseline_system(ssd_c(), n_ssds=n), dataset)
        speedup = model.popt().total_seconds / model.megis("ms").total_seconds
        print(f"  {n} SSDs: {speedup:5.2f}x")

    print("\nhost-DRAM sweep (speedup over P-Opt, SSD-C):")
    for dram_gb in (1000, 128, 64, 32):
        model = TimingModel(
            baseline_system(ssd_c()).with_dram(dram_gb * GB), dataset
        )
        speedup = model.popt().total_seconds / model.megis("ms").total_seconds
        print(f"  {dram_gb:4d} GB: {speedup:5.2f}x")


if __name__ == "__main__":
    main()
