#!/usr/bin/env python
"""Quickstart: analyze one metagenomic sample end to end with MegIS.

Builds a synthetic CAMI-like sample, constructs the index (sorted k-mer
database + CMash-style sketches) with :class:`IndexBuilder`, serves the
sample through an :class:`AnalysisSession` (host Step 1 -> in-storage
Step 2 -> Step 3), and compares the result against the ground truth and
against the accuracy-optimized software baseline (Metalign), which MegIS
must match exactly.
"""

from repro.megis.index import IndexBuilder
from repro.megis.session import AnalysisSession, MegisConfig
from repro.taxonomy.metrics import f1_score, l1_norm_error
from repro.workloads.cami import CamiDiversity, make_cami_sample


def main() -> None:
    print("building a CAMI-M-like sample (synthetic genomes + reads)...")
    sample = make_cami_sample(CamiDiversity.MEDIUM, n_reads=800, seed=42)
    print(f"  {len(sample.references.genomes)} reference species, "
          f"{sample.n_reads} reads, "
          f"{len(sample.present_species())} species truly present")

    print("building the index (sorted k-mer database + sketches)...")
    index = IndexBuilder(k=20).build(sample.references)
    print(f"  database: {len(index.database)} k-mers "
          f"({index.database.size_bytes() / 1e3:.0f} kB)")

    print("running MegIS (Step 1 host / Step 2 ISP / Step 3 abundance)...")
    session = AnalysisSession(index, MegisConfig(n_buckets=16))
    result = session.analyze(sample.reads)
    print(f"  {result.query_kmers} query k-mers in {result.n_buckets} buckets, "
          f"{len(result.intersecting_kmers)} intersecting")
    print(f"  candidates: {sorted(result.candidates)}")

    truth = sample.present_species()
    print(f"  F1 vs truth: {f1_score(result.present(), truth):.3f}")
    print(f"  L1 abundance error: "
          f"{l1_norm_error(result.profile.fractions, sample.truth.fractions):.3f}")

    print("verifying MegIS == Metalign (the paper's accuracy claim)...")
    reference = session.analyze_metalign(sample.reads)
    assert result.candidates == reference.candidates
    assert result.profile.fractions == reference.profile.fractions
    print("  identical candidates and abundance profile: OK")


if __name__ == "__main__":
    main()
