#!/usr/bin/env python
"""Full workflow: FASTQ in, quality filtering, database bundle, report out.

Exercises the complete downstream-user path:

1. simulate a sample and serialize it to FASTA/FASTQ (what a sequencer +
   basecaller would hand you);
2. quality-filter the reads (Phred trimming, as real preprocessing does);
3. build the offline database bundle (sorted db + sketches + KSS + Kraken)
   and place its serialized flash image through MegIS FTL;
4. run MegIS with both Step-3 flavors (mapping and lightweight statistics);
5. render Kraken-style text and JSON reports.
"""

from repro.databases.builder import DatabaseBuilder, place_bundle
from repro.megis.index import MegisIndex
from repro.megis.session import AnalysisSession, MegisConfig
from repro.reporting import json_report, text_report
from repro.sequences.io import format_fastq, parse_fastq
from repro.sequences.quality import QualityFilter
from repro.ssd.config import ssd_c
from repro.taxonomy.metrics import f1_score
from repro.workloads.cami import CamiDiversity, make_cami_sample


def main() -> None:
    print("1. sequencing a CAMI-L-like sample to FASTQ...")
    sample = make_cami_sample(CamiDiversity.LOW, n_reads=500, seed=31)
    fastq_text = format_fastq(sample.reads)
    print(f"   {sample.n_reads} reads, {len(fastq_text)} bytes of FASTQ")

    print("2. quality filtering...")
    records = parse_fastq(fastq_text)
    reads = QualityFilter(min_length=30).apply(records)
    print(f"   {len(reads)}/{len(records)} reads survive")

    print("3. building the database bundle offline...")
    bundle = DatabaseBuilder(k=20, smaller_ks=(12, 8)).build(sample.references)
    sizes = bundle.sizes()
    print(f"   sorted db {sizes['sorted_db'] / 1e3:.0f} kB | "
          f"flash image {sizes['flash_image'] / 1e3:.0f} kB | "
          f"KSS {sizes['kss'] / 1e3:.0f} kB "
          f"(flat sketch would be {sizes['flat_sketch'] / 1e3:.0f} kB)")
    layout = place_bundle(bundle, ssd_c().geometry)
    print(f"   placed on flash: {layout.n_pages} pages across "
          f"{len(layout.block_sequences)} channels")

    print("4. running MegIS (mapping + statistical Step 3)...")
    index = MegisIndex(bundle.sorted_db, bundle.sketch, bundle.references)
    mapping = AnalysisSession(
        index, MegisConfig(abundance_method="mapping")
    ).analyze(reads)
    statistical = AnalysisSession(
        index, MegisConfig(abundance_method="statistical")
    ).analyze(reads)
    truth = sample.present_species()
    print(f"   mapping:     F1 {f1_score(mapping.present(), truth):.3f}, "
          f"{len(mapping.profile)} species")
    print(f"   statistical: F1 {f1_score(statistical.present(0.02), truth):.3f}, "
          f"{len(statistical.profile)} species")

    print("5. reports:")
    print(text_report(mapping.profile, bundle.taxonomy, min_fraction=0.01))
    print("\nJSON (truncated):")
    print("\n".join(json_report(mapping.profile, bundle.taxonomy).splitlines()[:12]))


if __name__ == "__main__":
    main()
