#!/usr/bin/env python3
"""Cluster smoke: 2-node CLI bring-up, a node killed mid-stream, failover.

CI runs this after the unit suites.  Where ``tests/test_cluster.py``
drives in-process servers, this script exercises the real CLI surface —
``repro index build``, two ``repro node`` processes plus a standby
replica, and the ``repro cluster`` router — as *separate OS processes*
over localhost TCP, and walks one client connection through the full
failure story without ever reconnecting:

1. **healthy** — a request scatters to both nodes and the result is
   bit-identical to serial ``session.analyze`` on the same index file;
2. **kill mid-stream** — node 1's primary is SIGKILLed; the next request
   rides the retry path onto the replica and must still come back
   bit-identical;
3. **unretryable** — the replica is killed too; the next request must
   come back as a structured ``node_failed`` error frame on the same
   connection (never a bare reset, never a silent drop).

Exits 0 only if all three phases hold.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.megis import wire

REPO = Path(__file__).resolve().parent.parent
TIMEOUT_S = 420

_ADDRESS = re.compile(r"on ([0-9.]+):(\d+)")


def spawn(args, env):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stderr=subprocess.PIPE, text=True, env=env, cwd=REPO,
    )


def await_address(proc, what):
    """Parse HOST:PORT from the server's startup line on stderr."""
    line = proc.stderr.readline()
    if not line:
        raise RuntimeError(f"{what} exited before announcing its address "
                           f"(rc={proc.poll()})")
    match = _ADDRESS.search(line)
    if not match:
        raise RuntimeError(f"{what} printed {line!r}, expected an address")
    print(f"  {what}: {line.strip()}")
    return match.group(1), int(match.group(2))


def roundtrip(sock, request):
    """One request frame out, one reply frame back, connection kept open."""
    sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
    buf = bytearray()
    while b"\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            raise RuntimeError("router closed the connection mid-stream")
        buf.extend(chunk)
    return json.loads(bytes(buf[:buf.find(b"\n")]).decode("utf-8"))


def main():
    signal.alarm(TIMEOUT_S)  # hard watchdog: a hang fails, never wedges CI
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    sys.path.insert(0, str(REPO / "src"))
    from repro.megis.index import MegisIndex
    from repro.megis.session import AnalysisSession, MegisConfig
    from repro.sequences.io import references_to_fasta
    from repro.sequences.reads import Read
    from repro.workloads.cami import CamiDiversity, make_cami_sample

    tmp = Path(tempfile.mkdtemp(prefix="cluster_smoke_"))
    sample = make_cami_sample(CamiDiversity.MEDIUM, n_reads=90, n_genera=3,
                              species_per_genus=2, genome_length=900, seed=61)
    fasta = tmp / "refs.fasta"
    fasta.write_text(references_to_fasta(sample.references))
    index_path = tmp / "world.megis"
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "index", "build", str(fasta),
         str(index_path)],
        check=True, env=env, cwd=REPO,
    )

    chunks = [sample.reads[i * 30:(i + 1) * 30] for i in range(3)]
    session = AnalysisSession(
        MegisIndex.open(index_path),
        MegisConfig(abundance_method="statistical"),
    )
    expected = []
    for chunk in chunks:
        reference = session.analyze([
            Read(read_id=j, sequence=r.sequence, true_taxid=0)
            for j, r in enumerate(chunk)
        ])
        expected.append((
            sorted(int(t) for t in reference.candidates),
            {str(t): f
             for t, f in sorted(reference.profile.fractions.items())},
        ))
    session.close()

    placement = ["--nodes", "2", "--shards", "4"]
    procs = {}
    try:
        for name, node_id in (("node0", 0), ("node1", 1), ("replica1", 1)):
            procs[name] = spawn(
                ["node", "--index", str(index_path), "--node-id",
                 str(node_id), *placement],
                env,
            )
        addresses = {name: await_address(procs[name], name)
                     for name in ("node0", "node1", "replica1")}
        procs["router"] = spawn(
            ["cluster", "--index", str(index_path), *placement,
             "--node", "{}:{}".format(*addresses["node0"]),
             "--node", "{}:{}".format(*addresses["node1"]),
             "--replica", "1={}:{}".format(*addresses["replica1"]),
             "--heartbeat-ms", "200", "--node-timeout-ms", "5000",
             "--abundance", "statistical"],
            env,
        )
        router = await_address(procs["router"], "router")

        with socket.create_connection(router, timeout=60) as sock:
            sock.settimeout(60)

            frame = roundtrip(sock, wire.request_record(
                "healthy", [r.sequence for r in chunks[0]]))
            assert "error" not in frame, frame
            assert (frame["candidates"], frame["profile"]) == expected[0], (
                "healthy 2-node result must be bit-identical to serial"
            )
            print("  phase 1 ok: healthy scatter bit-identical")

            procs["node1"].kill()
            procs["node1"].wait()
            frame = roundtrip(sock, wire.request_record(
                "failover", [r.sequence for r in chunks[1]]))
            assert "error" not in frame, frame
            assert (frame["candidates"], frame["profile"]) == expected[1], (
                "retry-path result (replica) must be bit-identical to serial"
            )
            print("  phase 2 ok: killed primary, replica served "
                  "bit-identically")

            procs["replica1"].kill()
            procs["replica1"].wait()
            frame = roundtrip(sock, wire.request_record(
                "unretryable", [r.sequence for r in chunks[2]]))
            assert frame.get("id") == "unretryable", frame
            assert "node_failed: node=1 after 2 attempts" in \
                frame.get("error", ""), frame
            print("  phase 3 ok: structured node_failed frame on the "
                  "unretryable path")
            sock.shutdown(socket.SHUT_WR)
    finally:
        for proc in procs.values():
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs.values():
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
    print("cluster smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
