#!/usr/bin/env python
"""Multi-sample study: many samples against one database (paper §4.7, §6.3).

Scenario from the paper: globally tracing antimicrobial resistance or
associating gut microbiomes with health status requires analyzing many read
sets against the same reference database.  MegIS buffers the extracted
k-mers of several samples in host DRAM and streams the database from flash
*once* for the whole batch.

This example runs the functional pipeline over a small batch (verifying
per-sample results are unchanged) and then uses the timing model to
reproduce the Fig 21 scaling at paper scale.
"""

from repro.megis.index import IndexBuilder
from repro.megis.session import AnalysisSession, MegisConfig
from repro.perf.specs import baseline_system
from repro.perf.timing import TimingModel
from repro.ssd.config import GB, ssd_c, ssd_p
from repro.taxonomy.metrics import f1_score
from repro.workloads.cami import CamiDiversity, make_cami_sample
from repro.workloads.datasets import cami_spec


def main() -> None:
    print("building 3 patient samples sharing one reference collection...")
    base = make_cami_sample(CamiDiversity.MEDIUM, n_reads=400, seed=100)
    # All samples must query the same database: build it on sample 0's
    # references and re-simulate the other samples' reads against the same
    # references with different abundance draws.
    references = base.references
    index = IndexBuilder(k=20).build(references)
    session = AnalysisSession(index, MegisConfig(backend="numpy"))

    read_sets = [base.reads]
    truths = [base.present_species()]
    from repro.sequences.reads import ReadSimulator
    from repro.taxonomy.profiles import AbundanceProfile
    import numpy as np

    rng = np.random.Generator(np.random.PCG64(77))
    for i in range(2):
        taxids = references.species_taxids
        chosen = sorted(rng.choice(taxids, size=8, replace=False).tolist())
        weights = rng.lognormal(0, 1.0, size=len(chosen))
        truth = AbundanceProfile.from_counts(dict(zip(chosen, weights)))
        reads = ReadSimulator(seed=200 + i).simulate(references, truth.fractions, 400)
        read_sets.append(reads)
        truths.append(truth.present())

    print("analyzing the batch (Step 2 batched: database streamed once)...")
    results = session.analyze_batch(read_sets)
    for i, (result, truth) in enumerate(zip(results, truths)):
        print(f"  sample {i}: F1 = {f1_score(result.present(), truth):.3f}, "
              f"{len(result.candidates)} candidates")
    timings = results[0].timings
    print(f"  batch: {timings.samples_batched} samples shared one database "
          f"stream of {timings.db_kmers_streamed} k-mers "
          f"({timings.backend} backend, "
          f"step 2 in {timings.intersect_ms + timings.retrieve_ms:.1f} ms)")

    print("\nFig 21 scaling at paper scale (100M reads/sample, 256 GB DRAM):")
    for ssd in (ssd_c(), ssd_p()):
        model = TimingModel(
            baseline_system(ssd).with_dram(256 * GB), cami_spec("CAMI-M")
        )
        for n in (1, 4, 8, 16):
            ms = model.megis_multi(n).total_seconds
            popt = model.baseline_multi(n, "popt").total_seconds
            aopt = model.baseline_multi(n, "aopt").total_seconds
            print(f"  {ssd.name} n={n:2d}: MegIS {ms / 3600:5.2f} h "
                  f"({popt / ms:5.1f}x vs P-Opt, {aopt / ms:5.1f}x vs A-Opt)")


if __name__ == "__main__":
    main()
