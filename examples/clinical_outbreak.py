#!/usr/bin/env python
"""Clinical scenario: detect a low-abundance pathogen in a patient sample.

The paper's motivation (§1, §3.1) highlights urgent clinical settings —
e.g. sepsis diagnosis from blood cultures — where a pathogen may be a tiny
fraction of the sample and both speed and sensitivity matter.  This example
plants one rare pathogen species at ~2% abundance in a background of
commensal organisms and compares:

- the performance-optimized pipeline (Kraken2 on a smaller database), and
- MegIS (which matches the accuracy-optimized pipeline),

on whether the pathogen is detected, then uses the timing model to show the
turnaround-time advantage at paper scale.
"""


from repro.databases.kraken import KrakenDatabase
from repro.megis.index import IndexBuilder
from repro.megis.session import AnalysisSession
from repro.perf.specs import baseline_system
from repro.perf.timing import TimingModel
from repro.sequences.generator import GenomeGenerator
from repro.sequences.reads import ReadSimulator
from repro.ssd.config import ssd_c
from repro.taxonomy.tree import Taxonomy
from repro.tools.kraken2 import Kraken2Classifier
from repro.workloads.datasets import cami_spec


def main() -> None:
    print("constructing references: 5 commensal genera + 1 pathogen clade...")
    references = GenomeGenerator(
        n_genera=6, species_per_genus=3, genome_length=3000, seed=123
    ).generate()
    taxonomy = Taxonomy.from_reference_collection(references)
    species = references.species_taxids
    pathogen = species[-1]
    commensals = species[:4]
    print(f"  pathogen taxid: {pathogen}")

    # 2% pathogen among abundant commensals.
    profile = {taxid: 24.5 for taxid in commensals}
    profile[pathogen] = 2.0
    reads = ReadSimulator(read_length=100, error_rate=0.005, seed=9).simulate(
        references, profile, n_reads=1200
    )
    print(f"  sample: {len(reads)} reads, pathogen at "
          f"{profile[pathogen] / sum(profile.values()):.1%} abundance")

    print("\nKraken2 on a smaller performance-optimized database:")
    kraken_db = KrakenDatabase.build(
        references, taxonomy, k=21, genome_fraction=0.5, seed=1
    )
    classifier = Kraken2Classifier(kraken_db)
    kraken_present = classifier.present_species(classifier.analyze(reads))
    print(f"  pathogen indexed: {pathogen in kraken_db.indexed_taxids}")
    print(f"  pathogen detected: {pathogen in kraken_present}")

    print("\nMegIS (full accuracy-optimized database, in-storage):")
    index = IndexBuilder(k=20).build(references)
    result = AnalysisSession(index).analyze(reads)
    detected = pathogen in result.present()
    print(f"  pathogen detected: {detected}")
    print(f"  estimated abundance: {result.profile.abundance(pathogen):.1%}")

    print("\nturnaround time at paper scale (100M reads, SSD-C, 1TB host):")
    model = TimingModel(baseline_system(ssd_c()), cami_spec("CAMI-M"))
    for name, breakdown in (
        ("Kraken2 (P-Opt)", model.popt()),
        ("Metalign (A-Opt)", model.aopt()),
        ("MegIS", model.megis("ms")),
    ):
        print(f"  {name:18s} {breakdown.total_seconds / 60:7.1f} min")


if __name__ == "__main__":
    main()
